"""Independent replay validation of a periodic schedule.

Deliberately shares no arithmetic with the schedulers: instead of the
modulo overlap test the schedulers optimize against, this module
*unrolls* the steady state — instantiates every resource interval for
enough consecutive iterations to reach saturation, then sweeps one full
steady-state period for collisions (unit resources) and capacity
overflows (storage reservoirs).  A bug in the wrap-variable algebra or
the greedy residue arcs cannot hide behind itself here.

Checked per schedule:

* every operation placed exactly once, at a non-negative integer start;
* every dependency satisfied: child start >= parent end + delay;
* device and channel occupancy collision-free across overlapping
  iterations (the unrolled window covers at least two full iterations of
  every interval);
* per-reservoir storage occupancy within ``spec.storage_capacity`` —
  note this is *weaker* than the schedulers' conservative fixed
  slot-assignment, so a valid schedule never fails here spuriously.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ValidationError
from .problem import PeriodicProblem


@dataclass
class PeriodicSchedule:
    """A steady-state schedule: one iteration's starts plus the II."""

    problem: PeriodicProblem
    ii: int
    starts: dict[str, int]

    @property
    def latency(self) -> int:
        """One iteration's span (start of first op to last interval end)."""
        ends = [
            interval.concrete(self.starts)[1]
            for interval in self.problem.intervals
        ]
        return max(ends, default=0)

    def iteration_offset(self, k: int) -> int:
        return k * self.ii


def collect_periodic_violations(schedule: PeriodicSchedule) -> list[str]:
    """All steady-state violations in ``schedule`` (empty = valid)."""
    problem = schedule.problem
    starts = schedule.starts
    ii = schedule.ii
    violations: list[str] = []

    if ii < 1:
        return [f"initiation interval {ii} must be >= 1"]

    # -- completeness ------------------------------------------------------
    for uid in problem.order:
        if uid not in starts:
            violations.append(f"{uid} never placed")
        elif not isinstance(starts[uid], int) or starts[uid] < 0:
            violations.append(f"{uid} has invalid start {starts[uid]!r}")
    extra = sorted(set(starts) - set(problem.order))
    if extra:
        violations.append(f"unknown operations placed: {extra}")
    if violations:
        return violations  # downstream checks assume completeness

    # -- dependencies ------------------------------------------------------
    for parent, child in problem.edges:
        needed = (
            starts[parent]
            + problem.durations[parent]
            + problem.delays[(parent, child)]
        )
        if starts[child] < needed:
            violations.append(
                f"{child} starts at {starts[child]} < {parent} end "
                f"{starts[parent] + problem.durations[parent]} + delay "
                f"{problem.delays[(parent, child)]}"
            )

    # -- unrolled occupancy ------------------------------------------------
    concrete: dict[str, list[tuple[int, int, str]]] = {}
    max_end = 0
    for interval in problem.intervals:
        begin, end = interval.concrete(starts)
        if end < begin:
            violations.append(
                f"{interval.label}: negative occupancy [{begin}, {end})"
            )
            continue
        if end == begin:
            continue
        concrete.setdefault(interval.resource, []).append(
            (begin, end, interval.label)
        )
        max_end = max(max_end, end)

    if violations:
        return violations

    # Enough iterations that the window [window_lo, window_hi) sees every
    # interval copy that can intersect a steady-state period — at least
    # two full unrolled iterations of everything.
    iterations = max(2, math.ceil(max_end / ii) + 2)
    window_lo = (iterations - 1) * ii
    window_hi = iterations * ii

    def unrolled(entries: list[tuple[int, int, str]]):
        for begin, end, label in entries:
            for k in range(iterations + 1):
                lo = begin + k * ii
                hi = end + k * ii
                if hi <= window_lo or lo >= window_hi:
                    continue
                yield (lo, hi, f"{label}@{k}")

    capacity = problem.spec.storage_capacity
    for resource in sorted(concrete):
        instances = sorted(unrolled(concrete[resource]))
        reservoir = problem.slot_reservoirs.get(resource)
        if reservoir is not None:
            continue  # slots are grouped and checked per reservoir below
        busy_until = None
        busy_label = ""
        for lo, hi, label in instances:
            if busy_until is not None and lo < busy_until:
                violations.append(
                    f"{resource}: {busy_label} overlaps {label} "
                    f"(II={ii}, window [{window_lo}, {window_hi}))"
                )
            if busy_until is None or hi > busy_until:
                busy_until, busy_label = hi, label
    # -- reservoir capacity ------------------------------------------------
    by_reservoir: dict[str, list[tuple[int, int, str]]] = {}
    for resource, reservoir in problem.slot_reservoirs.items():
        for entry in concrete.get(resource, ()):
            by_reservoir.setdefault(reservoir, []).append(entry)
    for reservoir in sorted(by_reservoir):
        events: list[tuple[int, int]] = []
        for lo, hi, _label in unrolled(by_reservoir[reservoir]):
            events.append((lo, 1))
            events.append((hi, -1))
        level = 0
        for _time, delta in sorted(events):
            level += delta
            if level > capacity:
                violations.append(
                    f"reservoir {reservoir}: {level} concurrent reagents "
                    f"exceed capacity {capacity} (II={ii})"
                )
                break

    return violations


def validate_periodic_schedule(schedule: PeriodicSchedule) -> None:
    """Raise :class:`ValidationError` listing every violation, if any."""
    violations = collect_periodic_violations(schedule)
    if violations:
        raise ValidationError(
            f"{len(violations)} periodic violation(s):\n  "
            + "\n  ".join(violations)
        )
