"""Persistent solver sessions across II probes.

The II search solves the *same* modulo model a handful of times with
only the candidate interval changing.  Re-encoding the model per probe
wastes exactly the work PR-8's :class:`~repro.ilp.SolverSession`
machinery exists to save: this pool keeps one live session per periodic
problem and re-targets it between probes with
:func:`~repro.periodic.model.encode_ii_delta` — the solver re-extracts
only the dirtied wrap coefficients, bounds, and right-hand sides.

Mirrors :class:`repro.hls.session.SessionPool`'s contract and counters
(``created`` / ``reused`` / ``rebuilt``): with
``spec.enable_solver_sessions`` off, every probe rebuilds from scratch
(``rebuilt`` counts them) and the search returns byte-identical results,
because an applied delta re-assembles exactly the scratch standard form.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ilp import SolverSession, attach
from .model import PeriodicModel, build_periodic_model, encode_ii_delta
from .problem import PeriodicProblem


@dataclass
class PeriodicSession:
    """One live modulo model plus the solver attached to it."""

    pmodel: PeriodicModel
    solver: SolverSession

    def close(self) -> None:
        self.solver.close()


@dataclass
class PeriodicSessionPool:
    """Session reuse across the II probes of one periodic search."""

    enabled: bool = True
    backend: str = "auto"
    created: int = 0
    reused: int = 0
    rebuilt: int = 0
    _session: PeriodicSession | None = field(default=None, repr=False)

    def counters(self) -> dict[str, int]:
        return {
            "created": self.created,
            "reused": self.reused,
            "rebuilt": self.rebuilt,
        }

    def acquire(self, problem: PeriodicProblem, ii: int) -> PeriodicSession:
        """A session whose model encodes ``problem`` at ``ii``.

        Raises :class:`~repro.errors.SolverError` when the requested
        backend is unusable (e.g. ``highs`` without SciPy) — the caller
        decides whether to degrade to the greedy modulo scheduler.
        """
        if self.enabled and self._session is not None:
            session = self._session
            if session.pmodel.ii != ii:
                delta = encode_ii_delta(session.pmodel, ii)
                session.solver.apply(delta)
                session.pmodel.ii = ii
            self.reused += 1
            return session

        if self._session is not None:
            self._session.close()
            self._session = None
        pmodel = build_periodic_model(problem, ii)
        solver = attach(pmodel.model, backend=self.backend)
        session = PeriodicSession(pmodel=pmodel, solver=solver)
        if self.enabled:
            self.created += 1
            self._session = session
        else:
            self.rebuilt += 1
            self._session = session  # still tracked so close() releases it
        return session

    def close(self) -> None:
        if self._session is not None:
            self._session.close()
            self._session = None
