"""The periodic scheduling problem: what must not collide modulo II.

A one-shot synthesis result fixes *where* every operation runs (the
binding) and what every inter-device move costs (the transport
estimates).  Throughput mode keeps those decisions and re-times the
operations so back-to-back iterations of the whole assay can overlap: a
steady-state schedule with initiation interval ``II`` starts iteration
``k`` at time ``k * II``, so two absolute intervals collide exactly when
their *residues modulo II* collide.

This module reduces the synthesized result to that timing problem: a set
of operations with durations, precedence edges with delays, and a set of
**resource intervals** — device occupancy, channel shipments, and
storage occupancy — whose endpoints are affine in the operation start
times.  The formulation deliberately mirrors the one-shot model's
accounting (see :mod:`repro.hls.validate`):

* an operation occupies its device for its scheduled duration plus the
  release margin (the device keeps shipping to same-layer children bound
  apart before it frees up);
* a same-layer dependency delays the child by the edge's transportation
  estimate and, when the endpoints are bound apart, ships through the
  channel between the two devices for that long;
* a layer-crossing dependency carries **no** transport delay — the
  one-shot flow absorbs cross-layer moves into the real-time decision
  point between layers and charges nothing for them — but when a storage
  plan exists (``storage_mode != off``) the crossing reagent's buffer
  becomes a real interval: the producer's device (hold), the channel
  (channel storage), or a reservoir slot, occupied from the producer's
  end to the consumer's start.

Indeterminate operations participate with their scheduled (minimum)
durations: the steady state is the nominal pipeline, and the runtime
machinery still governs individual runs.  Reservoir capacity is modeled
by pinning each reservoir decision to a concrete slot (first-fit over
the baseline timing), which is conservative — the independent validator
checks the true per-reservoir capacity instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import SchedulingError
from ..operations.assay import Assay
from ..storage.plan import CHANNEL, HOLD, RESERVOIR
from ..hls.spec import SynthesisSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..hls.synthesizer import SynthesisResult
    from ..storage.plan import StoragePlan


@dataclass(frozen=True)
class AffineInterval:
    """A half-open resource occupancy ``[start, end)`` whose endpoints are
    an operation start plus a constant offset.

    ``start_anchor``/``end_anchor`` name the operations whose start times
    the endpoints ride on.  When both anchors agree the interval has fixed
    length; otherwise the length varies with the schedule (storage
    buffers).  ``concrete(starts)`` instantiates the endpoints.
    """

    resource: str
    label: str
    start_anchor: str
    start_offset: int
    end_anchor: str
    end_offset: int

    @property
    def fixed_length(self) -> int | None:
        """The interval's length when it does not depend on the schedule."""
        if self.start_anchor == self.end_anchor:
            return self.end_offset - self.start_offset
        return None

    def concrete(self, starts: dict[str, int]) -> tuple[int, int]:
        return (
            starts[self.start_anchor] + self.start_offset,
            starts[self.end_anchor] + self.end_offset,
        )


@dataclass
class PeriodicProblem:
    """Everything a periodic scheduler needs, detached from the one-shot
    machinery."""

    name: str
    #: operation uids in deterministic topological order.
    order: list[str]
    durations: dict[str, int]
    binding: dict[str, str]
    #: dependency edges with their start-to-start slack contribution:
    #: child start >= parent end + delay.
    edges: list[tuple[str, str]]
    delays: dict[tuple[str, str], int]
    intervals: list[AffineInterval]
    #: a known-feasible absolute schedule (the one-shot timing): it
    #: validates at ``II = horizon`` and anchors the II search from above.
    baseline_starts: dict[str, int]
    #: the one-shot fixed makespan; every baseline interval fits [0, horizon].
    horizon: int
    spec: SynthesisSpec
    #: reservoir slot resource -> reservoir uid (for capacity validation).
    slot_reservoirs: dict[str, str] = field(default_factory=dict)

    @property
    def num_ops(self) -> int:
        return len(self.order)

    def intervals_by_resource(self) -> dict[str, list[AffineInterval]]:
        grouped: dict[str, list[AffineInterval]] = {}
        for interval in self.intervals:
            grouped.setdefault(interval.resource, []).append(interval)
        return grouped

    def restrict(self, keep: set[str], name: str | None = None) -> "PeriodicProblem":
        """The sub-problem over the operations in ``keep``.

        Used by multi-variant sharing: the union assay's periodic problem,
        cut down to one variant's operations.  The baseline (a restriction
        of a feasible schedule) stays feasible, and the horizon is kept so
        the restricted baseline still fits ``[0, horizon]``.
        """
        missing = keep - set(self.order)
        if missing:
            raise SchedulingError(
                f"cannot restrict to unknown operations {sorted(missing)}"
            )
        return PeriodicProblem(
            name=name or self.name,
            order=[uid for uid in self.order if uid in keep],
            durations={u: d for u, d in self.durations.items() if u in keep},
            binding={u: b for u, b in self.binding.items() if u in keep},
            edges=[(p, c) for p, c in self.edges if p in keep and c in keep],
            delays={
                e: d
                for e, d in self.delays.items()
                if e[0] in keep and e[1] in keep
            },
            intervals=[
                i
                for i in self.intervals
                if i.start_anchor in keep and i.end_anchor in keep
            ],
            baseline_starts={
                u: s for u, s in self.baseline_starts.items() if u in keep
            },
            horizon=self.horizon,
            spec=self.spec,
            slot_reservoirs=dict(self.slot_reservoirs),
        )


def device_resource(device_uid: str) -> str:
    return f"dev:{device_uid}"


def channel_resource(device_a: str, device_b: str) -> str:
    a, b = (device_a, device_b) if device_a <= device_b else (device_b, device_a)
    return f"chan:{a}<->{b}"


def slot_resource(reservoir_uid: str, slot: int) -> str:
    return f"slot:{reservoir_uid}:{slot}"


def _assign_reservoir_slots(
    decisions: list,
    ends: dict[str, int],
    starts: dict[str, int],
    capacity: int,
) -> dict[tuple[str, str], str]:
    """First-fit slot assignment per reservoir over the baseline timing.

    Deterministic: decisions are processed in (producer, consumer) order;
    each takes the lowest slot whose previous occupant released (baseline
    consumer start) at or before this reagent's arrival (baseline producer
    end).  Overlapping demand beyond ``capacity`` opens further slots —
    the validator, not this assignment, enforces the true capacity.
    """
    assignment: dict[tuple[str, str], str] = {}
    per_reservoir: dict[str, list[int]] = {}  # slot -> busy-until
    for decision in sorted(decisions, key=lambda d: (d.producer, d.consumer)):
        arrival = ends[decision.producer]
        departure = starts[decision.consumer]
        slots = per_reservoir.setdefault(decision.location, [])
        for index, busy_until in enumerate(slots):
            if busy_until <= arrival:
                slots[index] = departure
                break
        else:
            index = len(slots)
            slots.append(departure)
        assignment[(decision.producer, decision.consumer)] = slot_resource(
            decision.location, index
        )
    return assignment


def build_periodic_problem(result: "SynthesisResult") -> PeriodicProblem:
    """Reduce a validated one-shot synthesis result to its periodic
    scheduling problem (fixed binding, affine resource intervals)."""
    assay = result.assay
    schedule = result.schedule
    spec = result.spec
    edge_t = result.edge_transport

    durations = {}
    binding = {}
    layer_of: dict[str, int] = {}
    baseline: dict[str, int] = {}
    for layer in schedule.layers:
        for uid, placement in layer.placements.items():
            durations[uid] = placement.duration
            binding[uid] = placement.device_uid
            layer_of[uid] = layer.index
            baseline[uid] = schedule.global_start(uid)[0]

    order = [uid for uid in assay.topological_order() if uid in durations]
    ends = {uid: baseline[uid] + durations[uid] for uid in order}

    edges: list[tuple[str, str]] = []
    delays: dict[tuple[str, str], int] = {}
    release: dict[str, int] = {uid: 0 for uid in order}
    intervals: list[AffineInterval] = []

    storage_plan: "StoragePlan | None" = result.storage_plan
    storage_by_edge = {}
    if storage_plan is not None:
        storage_by_edge = {
            (d.producer, d.consumer): d for d in storage_plan.decisions
        }
        slot_of = _assign_reservoir_slots(
            [d for d in storage_plan.decisions if d.mode == RESERVOIR],
            ends,
            baseline,
            spec.storage_capacity,
        )

    slot_reservoirs: dict[str, str] = {}
    for parent, child in sorted(assay.edges):
        if parent not in durations or child not in durations:
            continue
        same_layer = layer_of[parent] == layer_of[child]
        transport = edge_t.get((parent, child), 0)
        apart = binding[parent] != binding[child]
        edges.append((parent, child))
        # Cross-layer moves happen at the decision point between layers
        # and are not charged in the one-shot makespan; mirroring that
        # keeps the baseline schedule feasible here.
        delays[(parent, child)] = transport if same_layer else 0
        if same_layer and apart:
            release[parent] = max(release[parent], transport)
            if transport > 0:
                intervals.append(
                    AffineInterval(
                        resource=channel_resource(
                            binding[parent], binding[child]
                        ),
                        label=f"ship:{parent}->{child}",
                        start_anchor=parent,
                        start_offset=durations[parent],
                        end_anchor=parent,
                        end_offset=durations[parent] + transport,
                    )
                )
        decision = storage_by_edge.get((parent, child))
        if decision is None or same_layer:
            continue
        # A layer-crossing reagent with a storage decision occupies its
        # buffer from the producer's end to the consumer's start.
        if decision.mode == HOLD:
            resource = device_resource(binding[parent])
        elif decision.mode == CHANNEL:
            resource = channel_resource(binding[parent], binding[child])
        else:  # RESERVOIR
            resource = slot_of[(parent, child)]
            slot_reservoirs[resource] = decision.location
        intervals.append(
            AffineInterval(
                resource=resource,
                label=f"store:{parent}->{child}",
                start_anchor=parent,
                start_offset=durations[parent],
                end_anchor=child,
                end_offset=0,
            )
        )

    for uid in order:
        intervals.append(
            AffineInterval(
                resource=device_resource(binding[uid]),
                label=f"op:{uid}",
                start_anchor=uid,
                start_offset=0,
                end_anchor=uid,
                end_offset=durations[uid] + release[uid],
            )
        )

    return PeriodicProblem(
        name=assay.name,
        order=order,
        durations=durations,
        binding=binding,
        edges=edges,
        delays=delays,
        intervals=intervals,
        baseline_starts=baseline,
        horizon=schedule.fixed_makespan,
        spec=spec,
        slot_reservoirs=slot_reservoirs,
    )
