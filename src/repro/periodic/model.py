"""The modulo ILP: absolute starts, wrap variables, circular exclusivity.

For a candidate initiation interval ``II`` the model keeps one integer
start ``S_i`` per operation (bounded by the one-shot horizon) and one
integer *wrap* variable ``w`` per pair of intervals sharing a resource.
Two half-open intervals ``[s_i, e_i)`` and ``[s_j, e_j)`` are disjoint
modulo ``II`` exactly when some integer ``w`` satisfies

    0  <=  s_j - e_i + II*w  <=  II - len_i - len_j

i.e. iteration-shifted copies of ``i`` leave a gap that fits ``j``.
Substituting ``len = e - s`` collapses the upper branch to the tidy
``e_j - s_i + II*w <= II``, so each pair costs two rows:

    pair_lo:  s_j - e_i + II*w  >=  0
    pair_hi:  e_j - s_i + II*w  <=  II

Because the interval endpoints are affine in operation starts
(:class:`~repro.periodic.problem.AffineInterval`), both rows are linear.
``II`` appears only as the coefficient of ``w``, the right-hand side of
``pair_hi``, the right-hand side of the per-interval fit rows
(``len <= II``), and the wrap-variable bounds — so re-probing a new II
against a live :class:`~repro.ilp.SolverSession` is a small
:class:`~repro.ilp.ModelDelta`, not a re-encode (the PR-8 machinery).

The delta path re-assembles exactly the standard form a scratch build at
the new II produces, so search results are byte-identical with sessions
on or off (asserted by tests/test_periodic_sessions.py).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..ilp import LinExpr, Model, ModelDelta, Solution, Variable
from .problem import AffineInterval, PeriodicProblem


def wrap_bound(horizon: int, ii: int) -> int:
    """Bound on a wrap variable: intervals live in ``[0, horizon]``, so no
    pair ever needs to shift by more than the horizon's worth of periods."""
    return max(1, math.ceil(horizon / max(ii, 1)) + 1)


@dataclass
class _PairRow:
    lo_name: str
    hi_name: str
    wrap: Variable
    #: II-free part of the pair_hi right-hand side (from the interval
    #: endpoint offsets): rhs = II + hi_rhs_offset.
    hi_rhs_offset: int
    first: AffineInterval
    second: AffineInterval


@dataclass
class _FitRow:
    name: str
    #: rhs = II + rhs_offset.
    rhs_offset: int


@dataclass
class PeriodicModel:
    """A live modulo model for one :class:`PeriodicProblem` at one II."""

    problem: PeriodicProblem
    ii: int
    model: Model
    starts: dict[str, Variable]
    pairs: list[_PairRow] = field(default_factory=list)
    fits: list[_FitRow] = field(default_factory=list)

    def decode(self, solution: Solution) -> dict[str, int]:
        return {
            uid: solution.int_value(var) for uid, var in self.starts.items()
        }


def _endpoint(
    starts: dict[str, Variable], anchor: str, offset: int
) -> tuple[Variable, int]:
    return starts[anchor], offset


def build_periodic_model(problem: PeriodicProblem, ii: int) -> PeriodicModel:
    """Encode ``problem`` at candidate interval ``ii``.

    Deterministic: operations in topological order, intervals in problem
    order, pairs in (resource, index) order — the same construction a
    delta-mutated session re-assembles.
    """
    model = Model(name=f"periodic[{problem.name}]@{ii}", sense="min")
    horizon = problem.horizon
    starts = {
        uid: model.integer(f"S[{uid}]", lb=0, ub=horizon)
        for uid in problem.order
    }

    for parent, child in problem.edges:
        delay = problem.delays[(parent, child)]
        model.add(
            starts[child]
            >= starts[parent] + problem.durations[parent] + delay,
            name=f"dep[{parent}->{child}]",
        )

    fits: list[_FitRow] = []
    for interval in problem.intervals:
        if interval.fixed_length is not None:
            # Constant-length intervals get their fit check at probe time
            # (feasible_lengths) — an empty row would be degenerate.
            continue
        name = f"fit[{interval.label}]"
        expr = (
            starts[interval.end_anchor] - starts[interval.start_anchor]
        )
        offset = interval.start_offset - interval.end_offset
        model.add(expr <= ii + offset, name=name)
        fits.append(_FitRow(name=name, rhs_offset=offset))

    bound = wrap_bound(horizon, ii)
    pairs: list[_PairRow] = []
    grouped = problem.intervals_by_resource()
    for resource in sorted(grouped):
        intervals = grouped[resource]
        for a in range(len(intervals)):
            for b in range(a + 1, len(intervals)):
                first, second = intervals[a], intervals[b]
                wrap = model.integer(
                    f"w[{first.label}|{second.label}]", lb=-bound, ub=bound
                )
                lo_name = f"pair_lo[{first.label}|{second.label}]"
                hi_name = f"pair_hi[{first.label}|{second.label}]"
                # s_second - e_first + II*w >= 0
                model.add(
                    starts[second.start_anchor]
                    - starts[first.end_anchor]
                    + wrap * ii
                    >= first.end_offset - second.start_offset,
                    name=lo_name,
                )
                # e_second - s_first + II*w <= II
                hi_offset = first.start_offset - second.end_offset
                model.add(
                    starts[second.end_anchor]
                    - starts[first.start_anchor]
                    + wrap * ii
                    <= ii + hi_offset,
                    name=hi_name,
                )
                pairs.append(
                    _PairRow(
                        lo_name=lo_name,
                        hi_name=hi_name,
                        wrap=wrap,
                        hi_rhs_offset=hi_offset,
                        first=first,
                        second=second,
                    )
                )

    model.minimize(LinExpr.sum(starts[uid] for uid in problem.order))
    return PeriodicModel(
        problem=problem, ii=ii, model=model, starts=starts, pairs=pairs,
        fits=fits,
    )


def encode_ii_delta(pmodel: PeriodicModel, ii: int) -> ModelDelta:
    """The :class:`ModelDelta` that re-targets ``pmodel`` to a new II.

    Touches exactly the II-dependent entries (wrap coefficients and
    bounds, ``pair_hi`` and fit right-hand sides); applying it leaves the
    model equal to a scratch :func:`build_periodic_model` at ``ii``.
    """
    delta = ModelDelta()
    bound = wrap_bound(pmodel.problem.horizon, ii)
    for fit in pmodel.fits:
        delta.set_rhs(fit.name, ii + fit.rhs_offset)
    for pair in pmodel.pairs:
        delta.set_coefficient(pair.lo_name, pair.wrap, ii)
        delta.set_coefficient(pair.hi_name, pair.wrap, ii)
        delta.set_rhs(pair.hi_name, ii + pair.hi_rhs_offset)
        delta.set_variable_bounds(pair.wrap, lb=-bound, ub=bound)
    return delta


def feasible_lengths(problem: PeriodicProblem, ii: int) -> bool:
    """Whether every fixed-length interval fits one period at all —
    a constant-time reject cheaper than any solve."""
    for interval in problem.intervals:
        length = interval.fixed_length
        if length is not None and length > ii:
            return False
    return True


def warm_start_values(
    pmodel: PeriodicModel, starts: dict[str, int]
) -> dict[Variable, float]:
    """A complete feasible assignment of ``pmodel`` from concrete starts.

    Picks each wrap variable as the (unique, when one exists) integer
    placing the pair's gap inside ``[0, II - len_i - len_j]``; used to
    warm-start MIP probes from the previous feasible schedule.
    """
    ii = pmodel.ii
    values: dict[Variable, float] = {
        var: float(starts[uid]) for uid, var in pmodel.starts.items()
    }
    for pair in pmodel.pairs:
        gap = (
            pair.second.concrete(starts)[0] - pair.first.concrete(starts)[1]
        )
        # The smallest w with gap + II*w >= 0 lands the circular gap at
        # (gap mod II); for a schedule feasible at this II that w also
        # satisfies the pair's upper row.
        values[pair.wrap] = float(-(gap // ii)) if ii else 0.0
    return values
