"""Multi-variant shared-schedule synthesis.

Labs rarely run one assay: they run *families* of variants sharing most
of their DAG (a full protocol, a shortened QC pass, a calibration
subset).  Synthesizing each variant independently wastes chip area —
every variant gets its own device set — and forbids interleaving them on
one chip.  This module instead synthesizes **one** binding that serves
every variant:

1. the variants are merged into a *union assay* (operations identical by
   uid across variants merge; a uid with conflicting definitions is
   rejected — rename per variant);
2. one one-shot synthesis of the union fixes devices, binding, and
   transport for everything any variant executes;
3. each variant's periodic problem is the union's, restricted to the
   variant's operations (:meth:`~repro.periodic.problem.
   PeriodicProblem.restrict`) — the union schedule restricted to the
   variant stays feasible, anchoring each per-variant II search;
4. the ablation compares each variant's II under the shared binding
   against an independently synthesized baseline (own devices, own II).

The *shared skeleton* — operations present in every variant with
identical definitions — quantifies how much of the DAG the family
actually shares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from typing import TYPE_CHECKING

from ..errors import SpecificationError
from ..operations.assay import Assay
from ..hls.spec import SynthesisSpec
from .problem import build_periodic_problem
from .scheduler import ThroughputResult, schedule_throughput

if TYPE_CHECKING:  # pragma: no cover
    from ..hls.synthesizer import SynthesisResult


def _op_token(op) -> tuple:
    return (
        op.duration.minimum,
        op.is_indeterminate,
        op.capacity.value,
        op.container.value if op.container else None,
        tuple(sorted(op.accessories)),
        op.function,
    )


def shared_skeleton(assays: list[Assay]) -> list[str]:
    """Uids present in *every* variant with identical definitions."""
    if not assays:
        return []
    common: set[str] | None = None
    for assay in assays:
        uids = set(assay.uids)
        common = uids if common is None else common & uids
    assert common is not None
    first = assays[0]
    return sorted(
        uid
        for uid in common
        if all(_op_token(a[uid]) == _op_token(first[uid]) for a in assays[1:])
    )


def union_assay(assays: list[Assay], name: str = "") -> Assay:
    """Merge variants into one assay; same-uid operations must agree.

    Raises :class:`SpecificationError` on a uid whose definition differs
    between variants (rename it per variant) and on a dependency cycle
    introduced by the merge (via :meth:`Assay.validate`).
    """
    if not assays:
        raise SpecificationError("union of zero assay variants")
    union = Assay(name or "+".join(a.name for a in assays))
    seen: dict[str, tuple] = {}
    for assay in assays:
        for op in assay:
            token = _op_token(op)
            if op.uid in seen:
                if seen[op.uid] != token:
                    raise SpecificationError(
                        f"variant operation {op.uid!r} has conflicting "
                        f"definitions across variants; rename it per variant"
                    )
                continue
            seen[op.uid] = token
            union.add(op)
    edges: set[tuple[str, str]] = set()
    for assay in assays:
        edges.update(assay.edges)
    for parent, child in sorted(edges):
        union.add_dependency(parent, child)
    union.validate()
    return union


def prefix_variant(assay: Assay, fraction: float, name: str = "") -> Assay:
    """The dependency-closed variant of the first ``ceil(fraction * n)``
    operations in topological order.

    A topological prefix contains every ancestor of each member, so the
    subset is always a valid DAG — the canonical way to derive a
    "shortened run" variant for ablations (and the
    ``spec.throughput_variants`` wire format).
    """
    if not 0 < fraction <= 1:
        raise SpecificationError(
            f"prefix fraction {fraction!r} must be in (0, 1]"
        )
    order = assay.topological_order()
    count = max(1, ceil(fraction * len(order)))
    keep = order[:count]
    return assay.subset(keep, name or f"{assay.name}[{fraction:g}]")


@dataclass
class VariantReport:
    """One variant's shared-binding vs independent-synthesis comparison."""

    name: str
    num_ops: int
    shared: ThroughputResult
    independent: ThroughputResult
    independent_devices: int

    @property
    def shared_ii(self) -> int:
        return self.shared.ii

    @property
    def independent_ii(self) -> int:
        return self.independent.ii


@dataclass
class SharedThroughput:
    """The union synthesis plus per-variant periodic results."""

    union_result: "SynthesisResult"
    skeleton: list[str]
    reports: list[VariantReport] = field(default_factory=list)

    @property
    def shared_devices(self) -> int:
        return self.union_result.num_devices

    @property
    def independent_devices(self) -> int:
        """Devices a per-variant synthesis fleet would build in total."""
        return sum(r.independent_devices for r in self.reports)


def synthesize_shared(
    assays: list[Assay],
    spec: SynthesisSpec | None = None,
) -> SharedThroughput:
    """One binding for all variants, with per-variant periodic IIs and
    independently-synthesized baselines."""
    from ..hls import synthesize

    spec = spec or SynthesisSpec()
    union = union_assay(assays)
    union_result = synthesize(union, spec)
    union_problem = build_periodic_problem(union_result)

    reports: list[VariantReport] = []
    for assay in assays:
        keep = set(assay.uids)
        shared_problem = union_problem.restrict(keep, name=assay.name)
        shared = schedule_throughput(shared_problem, spec)
        independent_result = synthesize(assay, spec)
        independent = schedule_throughput(independent_result, spec)
        reports.append(
            VariantReport(
                name=assay.name,
                num_ops=len(assay),
                shared=shared,
                independent=independent,
                independent_devices=independent_result.num_devices,
            )
        )
    return SharedThroughput(
        union_result=union_result,
        skeleton=shared_skeleton(assays),
        reports=reports,
    )


def derive_variants(assay: Assay, fractions: tuple[float, ...]) -> list[Assay]:
    """The assay itself plus its topological-prefix variants.

    The materialization of ``spec.throughput_variants``: fraction 1.0 is
    skipped (the full assay is always included first).
    """
    variants = [assay]
    for fraction in fractions:
        if fraction >= 1:
            continue
        variants.append(prefix_variant(assay, fraction))
    return variants
