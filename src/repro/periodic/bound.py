"""Certified lower bounds on the initiation interval.

Any feasible periodic schedule must fit, inside every period, the full
per-iteration busy time of each unit-capacity resource: the device,
channel, and slot intervals wrap modulo II but never overlap, so

    II  >=  sum of interval lengths on r        for every resource r
    II  >=  length of any single interval

(the classic ResMII argument).  Variable-length storage intervals
contribute their precedence-implied minimum (zero for layer-crossing
buffers, whose producers and consumers may abut).

The bound is *solved as an LP* through the existing relaxation machinery
rather than computed by a ``max()`` so it rides the same certification
path as the layer solves: only an ``OPTIMAL`` LP solution certifies, and
the pure-Python simplex keeps the certificate available when SciPy is
absent.  A plain-arithmetic cross-check (:func:`resource_bound`) guards
the LP against encoding bugs — the two must agree.
"""

from __future__ import annotations

import math

from ..ilp import Model, Solution
from ..ilp.relaxation import relaxation_bound
from .problem import PeriodicProblem

#: wall-clock budget for the (tiny) bound LP, seconds.
BOUND_LP_BUDGET = 5.0


def _min_length(problem: PeriodicProblem, interval) -> int:
    fixed = interval.fixed_length
    if fixed is not None:
        return fixed
    # Variable-length storage interval anchored producer->consumer: the
    # dependency edge implies S_c >= S_p + d_p + delay, so the length
    # (S_c + end_offset) - (S_p + start_offset) is at least
    # d_p + delay + end_offset - start_offset (zero for layer-crossing
    # buffers, whose delay is 0 and start_offset is d_p).
    edge = (interval.start_anchor, interval.end_anchor)
    if edge not in problem.delays:
        return 0
    return max(
        0,
        problem.durations[interval.start_anchor]
        + problem.delays[edge]
        + interval.end_offset
        - interval.start_offset,
    )


def resource_bound(problem: PeriodicProblem) -> int:
    """The ResMII bound by direct arithmetic (LP cross-check)."""
    best = 1
    for intervals in problem.intervals_by_resource().values():
        lengths = [_min_length(problem, i) for i in intervals]
        best = max(best, sum(lengths), max(lengths, default=0))
    return best


def ii_lower_bound(
    problem: PeriodicProblem,
) -> tuple[int, Solution | None]:
    """A certified lower bound on the II, with the LP certificate.

    Returns ``(bound, solution)``; ``solution`` is the ``OPTIMAL`` LP
    solution when the relaxation machinery proved the bound, else
    ``None`` (the arithmetic bound still holds — it is a theorem about
    the problem, not a solver artifact — but carries no LP certificate).
    """
    model = Model(name=f"resmii[{problem.name}]", sense="min")
    ii = model.continuous("II", lb=1.0)
    for resource, intervals in sorted(
        problem.intervals_by_resource().items()
    ):
        lengths = [_min_length(problem, i) for i in intervals]
        total = sum(lengths)
        if total > 0:
            model.add(ii >= total, name=f"busy[{resource}]")
        longest = max(lengths, default=0)
        if longest > 0:
            model.add(ii >= longest, name=f"fit[{resource}]")
    model.minimize(ii)

    solution = relaxation_bound(
        model, backend=problem.spec.backend, time_limit=BOUND_LP_BUDGET
    )
    arithmetic = resource_bound(problem)
    if solution is None:
        return arithmetic, None
    certified = int(math.ceil(round(solution.objective, 6)))
    # The LP minimizes over exactly the arithmetic constraints; any
    # disagreement is an encoding bug, and the weaker value is the only
    # safe claim.
    return min(certified, arithmetic), solution
