"""Greedy modulo list scheduling.

The heuristic counterpart of the modulo ILP: operations are placed in
topological order at the earliest start that clears every resource
circularly.  Two concrete half-open intervals collide modulo II exactly
when either start falls inside the other interval's residue arc:

    overlap  <=>  (b0 - a0) mod II < len_a  or  (a0 - b0) mod II < len_b

On a conflict the candidate start jumps to the conflicting interval's
circular end (never less than one step), bounded by one full period of
candidates — failing to place an operation makes the probe infeasible,
which the II search treats as "try a larger II" (greedy incompleteness
only ever costs quality, not correctness: every accepted schedule is
re-validated independently).

Storage intervals whose length depends on the operation being placed
(a buffer ``[E_p, S_c)`` closing at the consumer's start) are resolved
at the consumer: moving the consumer later *grows* them, so a buffer
that already overflows one period can never be repaired by shifting and
aborts the probe immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .problem import AffineInterval, PeriodicProblem


def circular_overlap(
    a_start: int, a_length: int, b_start: int, b_length: int, ii: int
) -> bool:
    """Whether two intervals of the given lengths collide modulo ``ii``."""
    if a_length <= 0 or b_length <= 0:
        return False
    if a_length + b_length > ii:
        return True
    return (b_start - a_start) % ii < a_length or (
        a_start - b_start
    ) % ii < b_length


@dataclass
class _Placed:
    start: int
    length: int
    label: str


def _conflicts(
    state: dict[str, list[_Placed]],
    resource: str,
    start: int,
    length: int,
    ii: int,
) -> list[_Placed]:
    return [
        placed
        for placed in state.get(resource, ())
        if circular_overlap(start, length, placed.start, placed.length, ii)
    ]


def greedy_modulo_schedule(
    problem: PeriodicProblem, ii: int
) -> dict[str, int] | None:
    """Concrete starts for every operation at interval ``ii``, or ``None``
    when the heuristic finds no placement."""
    starts: dict[str, int] = {}
    state: dict[str, list[_Placed]] = {}

    # Intervals become concrete once their *latest* anchor is placed;
    # topological order guarantees start anchors precede end anchors.
    resolved_at: dict[str, list[AffineInterval]] = {uid: [] for uid in problem.order}
    position = {uid: k for k, uid in enumerate(problem.order)}
    for interval in problem.intervals:
        later = max(
            interval.start_anchor,
            interval.end_anchor,
            key=lambda uid: position[uid],
        )
        resolved_at[later].append(interval)
    parents: dict[str, list[str]] = {uid: [] for uid in problem.order}
    for parent, child in problem.edges:
        parents[child].append(parent)

    for uid in problem.order:
        earliest = 0
        for parent in parents[uid]:
            earliest = max(
                earliest,
                starts[parent]
                + problem.durations[parent]
                + problem.delays[(parent, uid)],
            )

        placed_here = _try_place(
            problem, uid, earliest, resolved_at[uid], starts, state, ii
        )
        if placed_here is None:
            return None
        starts[uid] = placed_here
        for interval in resolved_at[uid]:
            begin, end = interval.concrete(starts)
            if end > begin:
                state.setdefault(interval.resource, []).append(
                    _Placed(start=begin, length=end - begin, label=interval.label)
                )
    return starts


def _try_place(
    problem: PeriodicProblem,
    uid: str,
    earliest: int,
    intervals: list[AffineInterval],
    starts: dict[str, int],
    state: dict[str, list[_Placed]],
    ii: int,
) -> int | None:
    candidate = earliest
    deadline = earliest + ii  # one full period of residues
    while candidate < deadline:
        starts[uid] = candidate
        jump = 0
        feasible = True
        for interval in intervals:
            begin, end = interval.concrete(starts)
            length = end - begin
            if length <= 0:
                continue
            if length > ii:
                # A buffer longer than one period self-collides; moving
                # this operation later only grows it.
                del starts[uid]
                return None
            for hit in _conflicts(state, interval.resource, begin, length, ii):
                feasible = False
                clearance = (hit.start + hit.length - begin) % ii
                jump = max(jump, clearance, 1)
        del starts[uid]
        if feasible:
            return candidate
        candidate += jump
    return None
