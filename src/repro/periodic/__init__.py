"""Throughput mode: steady-state periodic (modulo) scheduling.

One-shot synthesis answers "how fast can one run of the assay finish?".
Real labs run the same assay back-to-back thousands of times, and run
families of variants sharing most of their DAG.  This package re-times a
synthesized result so consecutive iterations overlap on the chip —
iteration ``k`` starts at ``k * II`` — and minimizes the initiation
interval ``II``, the steady-state cost of one more run.

Modules:

* :mod:`~repro.periodic.problem`   — reduce a synthesis result to affine
  resource intervals (device / channel / storage occupancy);
* :mod:`~repro.periodic.model`     — the modulo ILP over the ``ilp/``
  layer, with II re-probing as a :class:`~repro.ilp.ModelDelta`;
* :mod:`~repro.periodic.session`   — solver-session reuse across probes;
* :mod:`~repro.periodic.greedy`    — the greedy modulo list scheduler;
* :mod:`~repro.periodic.bound`     — LP-certified ResMII lower bounds;
* :mod:`~repro.periodic.scheduler` — the II search, backend registry,
  and :class:`ThroughputResult`;
* :mod:`~repro.periodic.validate`  — independent unrolled replay;
* :mod:`~repro.periodic.variants`  — multi-variant shared-schedule
  synthesis and the sharing ablation.
"""

from .bound import ii_lower_bound, resource_bound
from .greedy import circular_overlap, greedy_modulo_schedule
from .model import build_periodic_model, encode_ii_delta
from .problem import AffineInterval, PeriodicProblem, build_periodic_problem
from .scheduler import (
    ProbeRecord,
    ThroughputResult,
    available_periodic_schedulers,
    create_periodic_scheduler,
    register_periodic_scheduler,
    schedule_throughput,
)
from .session import PeriodicSessionPool
from .validate import (
    PeriodicSchedule,
    collect_periodic_violations,
    validate_periodic_schedule,
)
from .variants import (
    SharedThroughput,
    VariantReport,
    derive_variants,
    prefix_variant,
    shared_skeleton,
    synthesize_shared,
    union_assay,
)

__all__ = [
    "AffineInterval",
    "PeriodicProblem",
    "PeriodicSchedule",
    "PeriodicSessionPool",
    "ProbeRecord",
    "SharedThroughput",
    "ThroughputResult",
    "VariantReport",
    "available_periodic_schedulers",
    "build_periodic_model",
    "build_periodic_problem",
    "circular_overlap",
    "collect_periodic_violations",
    "create_periodic_scheduler",
    "derive_variants",
    "encode_ii_delta",
    "greedy_modulo_schedule",
    "ii_lower_bound",
    "prefix_variant",
    "register_periodic_scheduler",
    "resource_bound",
    "schedule_throughput",
    "shared_skeleton",
    "synthesize_shared",
    "union_assay",
    "validate_periodic_schedule",
]
