"""The II search: probe candidate intervals, certify the result.

Mirrors the one-shot flow's :mod:`repro.hls.backends` registry idiom —
periodic scheduler backends are registered by name and selected through
``spec.throughput_scheduler``:

* ``ilp``    — every probe solves the modulo ILP of
  :mod:`repro.periodic.model` through a pooled
  :class:`~repro.ilp.SolverSession` (one encode, per-probe deltas);
* ``greedy`` — every probe runs the modulo list scheduler;
* ``auto``   — the ILP when a MIP backend is usable and the model is
  reasonably sized, degrading to greedy **per probe** on solver
  unavailability (missing SciPy ⇒ :class:`~repro.errors.SolverError`),
  timeout without incumbent, or an oversized pair set.

The search itself is a guarded binary search on ``[lower bound,
one-shot makespan]``.  The one-shot schedule is always feasible at
``II = makespan`` (consecutive iterations don't overlap at all), which
anchors the search from above; every accepted probe is re-validated by
the independent replay of :mod:`repro.periodic.validate`, so a probe
whose schedule fails validation counts as infeasible instead of
corrupting the result — modulo feasibility of a *heuristic* is not
perfectly monotone in II, and the guard keeps that a quality issue, not
a correctness one.  The achieved II carries the certified ResMII lower
bound and relative gap through the standard
:class:`~repro.ilp.SolveStats` fields.
"""

from __future__ import annotations

import time
import warnings
from collections.abc import Callable
from dataclasses import dataclass, field

from ..errors import SchedulingError, SolverError
from ..hls.spec import PERIODIC_SCHEDULERS, SynthesisSpec
from ..ilp import SolveStats, relative_gap
from .bound import ii_lower_bound
from .greedy import greedy_modulo_schedule
from .model import feasible_lengths, warm_start_values
from .problem import PeriodicProblem, build_periodic_problem
from .session import PeriodicSessionPool
from .validate import (
    PeriodicSchedule,
    collect_periodic_violations,
    validate_periodic_schedule,
)

#: "auto" refuses the MIP above this many interval pairs and goes greedy:
#: beyond it the per-probe solves dominate wall clock without moving the
#: achieved II much on the paper cases.
AUTO_MAX_PAIRS = 600


@dataclass
class ProbeRecord:
    """One candidate II and what happened to it."""

    ii: int
    feasible: bool
    scheduler: str
    solve_time: float


@dataclass
class ThroughputResult:
    """A validated steady-state schedule plus its search telemetry."""

    schedule: PeriodicSchedule
    stats: SolveStats
    probes: list[ProbeRecord] = field(default_factory=list)
    #: session-pool counters of the search (created/reused/rebuilt).
    pool_counters: dict[str, int] = field(default_factory=dict)
    #: the backend that produced the accepted schedule.
    scheduler: str = ""
    #: the ILP degraded to greedy at least once (missing backend/budget).
    degraded: bool = False

    @property
    def ii(self) -> int:
        return self.schedule.ii

    @property
    def base_makespan(self) -> int:
        return self.schedule.problem.horizon

    @property
    def latency(self) -> int:
        return self.schedule.latency

    @property
    def lower_bound(self) -> float | None:
        return self.stats.lower_bound

    @property
    def integrality_gap(self) -> float | None:
        return self.stats.integrality_gap

    @property
    def speedup(self) -> float:
        """Steady-state throughput gain over back-to-back one-shot runs."""
        return self.base_makespan / self.ii if self.ii else float("inf")


class PeriodicSchedulerBackend:
    """One strategy for answering "is this II feasible, and how?"."""

    name = "periodic"

    def attempt(
        self, problem: PeriodicProblem, ii: int, search: "_Search"
    ) -> dict[str, int] | None:
        raise NotImplementedError


@dataclass
class _Search:
    """Mutable probe state shared across one II search."""

    spec: SynthesisSpec
    pool: PeriodicSessionPool
    #: best known feasible starts, warm-start seed for MIP probes.
    incumbent: dict[str, int] | None = None
    degraded: bool = False
    warned: bool = False

    def degrade(self, reason: str) -> None:
        self.degraded = True
        if not self.warned:
            self.warned = True
            warnings.warn(
                f"periodic ILP unavailable ({reason}); "
                f"degrading to the greedy modulo scheduler",
                RuntimeWarning,
                stacklevel=3,
            )


class GreedyPeriodicScheduler(PeriodicSchedulerBackend):
    name = "greedy"

    def attempt(self, problem, ii, search):
        return greedy_modulo_schedule(problem, ii)


class IlpPeriodicScheduler(PeriodicSchedulerBackend):
    name = "ilp"

    def attempt(self, problem, ii, search):
        session = search.pool.acquire(problem, ii)
        warm = None
        if search.spec.enable_warm_start and search.incumbent is not None:
            warm = warm_start_values(session.pmodel, search.incumbent)
        solution = session.solver.solve(
            time_limit=search.spec.time_limit,
            mip_gap=search.spec.mip_gap,
            warm_start=warm,
        )
        if not solution.status.has_solution:
            return None
        return session.pmodel.decode(solution)


class AutoPeriodicScheduler(PeriodicSchedulerBackend):
    """ILP with per-probe greedy degradation (the default)."""

    name = "auto"

    def __init__(self) -> None:
        self._ilp = IlpPeriodicScheduler()
        self._greedy = GreedyPeriodicScheduler()

    def attempt(self, problem, ii, search):
        pair_count = sum(
            len(group) * (len(group) - 1) // 2
            for group in problem.intervals_by_resource().values()
        )
        if not search.degraded and pair_count <= AUTO_MAX_PAIRS:
            try:
                starts = self._ilp.attempt(problem, ii, search)
            except SolverError as exc:
                search.degrade(str(exc))
            else:
                if starts is not None:
                    return starts
                # No incumbent within budget: give greedy one shot at the
                # same II before declaring it infeasible.
                return self._greedy.attempt(problem, ii, search)
        if not search.degraded and pair_count > AUTO_MAX_PAIRS:
            search.degraded = True  # size-based, no warning needed
        return self._greedy.attempt(problem, ii, search)


_PERIODIC_SCHEDULERS: dict[str, Callable[[], PeriodicSchedulerBackend]] = {}


def register_periodic_scheduler(
    name: str, factory: Callable[[], PeriodicSchedulerBackend]
) -> None:
    _PERIODIC_SCHEDULERS[name] = factory


def available_periodic_schedulers() -> tuple[str, ...]:
    return tuple(_PERIODIC_SCHEDULERS)


def create_periodic_scheduler(name: str) -> PeriodicSchedulerBackend:
    try:
        factory = _PERIODIC_SCHEDULERS[name]
    except KeyError:
        raise SchedulingError(
            f"unknown periodic scheduler {name!r} "
            f"(choices: {', '.join(_PERIODIC_SCHEDULERS)})"
        ) from None
    return factory()


register_periodic_scheduler("auto", AutoPeriodicScheduler)
register_periodic_scheduler("ilp", IlpPeriodicScheduler)
register_periodic_scheduler("greedy", GreedyPeriodicScheduler)

# The registry must stay in lockstep with the spec-level enum the CLI and
# service validate against.
assert set(PERIODIC_SCHEDULERS) == set(_PERIODIC_SCHEDULERS)


def _validated(
    problem: PeriodicProblem, ii: int, starts: dict[str, int] | None
) -> PeriodicSchedule | None:
    if starts is None:
        return None
    schedule = PeriodicSchedule(problem=problem, ii=ii, starts=starts)
    if collect_periodic_violations(schedule):
        return None
    return schedule


def schedule_throughput(
    source,
    spec: SynthesisSpec | None = None,
) -> ThroughputResult:
    """Minimize the initiation interval of ``source``.

    ``source`` is a one-shot :class:`~repro.hls.synthesizer.
    SynthesisResult` (reduced via :func:`build_periodic_problem`) or an
    already-built :class:`PeriodicProblem`.  Returns a validated
    :class:`ThroughputResult`; raises :class:`SchedulingError` only when
    even the one-shot baseline fails periodic validation (which would
    mean the one-shot result itself is broken).
    """
    if isinstance(source, PeriodicProblem):
        problem = source
    else:
        problem = build_periodic_problem(source)
    spec = spec or problem.spec

    started = time.monotonic()
    bound, certificate = ii_lower_bound(problem)
    backend = create_periodic_scheduler(spec.throughput_scheduler)
    pool = PeriodicSessionPool(
        enabled=spec.enable_solver_sessions, backend=spec.backend
    )
    search = _Search(spec=spec, pool=pool)
    probes: list[ProbeRecord] = []

    best = _validated(problem, max(problem.horizon, 1), problem.baseline_starts)
    if best is None:
        raise SchedulingError(
            "one-shot schedule fails periodic replay at II = makespan; "
            "the synthesis result is inconsistent"
        )
    best_scheduler = "baseline"
    search.incumbent = dict(problem.baseline_starts)

    floor = max(bound, 1)
    if spec.target_ii is not None:
        floor = max(floor, spec.target_ii)

    lo, hi = floor, best.ii
    try:
        while lo < hi:
            mid = (lo + hi) // 2
            probe_started = time.monotonic()
            starts = None
            if feasible_lengths(problem, mid):
                starts = backend.attempt(problem, mid, search)
            schedule = _validated(problem, mid, starts)
            probes.append(
                ProbeRecord(
                    ii=mid,
                    feasible=schedule is not None,
                    scheduler=backend.name,
                    solve_time=time.monotonic() - probe_started,
                )
            )
            if schedule is not None:
                best = schedule
                best_scheduler = backend.name
                search.incumbent = dict(schedule.starts)
                hi = mid
            else:
                lo = mid + 1
    finally:
        pool.close()

    validate_periodic_schedule(best)
    stats = SolveStats(
        layer=-1,
        backend=f"periodic-{backend.name}",
        status="FEASIBLE" if best.ii > bound else "OPTIMAL",
        solve_time=time.monotonic() - started,
        objective=float(best.ii),
        lower_bound=float(bound),
        warm_started=spec.enable_warm_start,
    )
    stats.integrality_gap = relative_gap(stats.objective, stats.lower_bound)
    if certificate is None:
        # The arithmetic ResMII bound holds regardless, but without an
        # OPTIMAL LP certificate the gap is reported, not certified.
        stats.status += " (uncertified-lp)"
    return ThroughputResult(
        schedule=best,
        stats=stats,
        probes=probes,
        pool_counters=pool.counters(),
        scheduler=best_scheduler,
        degraded=search.degraded,
    )
