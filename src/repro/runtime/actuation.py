"""Valve-actuation program generation.

Turns a hybrid schedule into the timed control program a chip controller
executes: seal/open the container isolation valves around every operation,
run the peristaltic pump phases during pumped operations, and actuate the
routing valves of a transportation path for every cross-device reagent
transfer.  The total *switch count* is the metric that valve-switching-
aware synthesis (the paper's reference [4]) minimizes; here it quantifies
how much control effort a synthesized schedule implies.

Times are layer-relative like the schedule itself; indeterminate
operations emit an ``OPEN_ENDED`` marker instead of a close event (the
real-time controller closes them when the retry loop succeeds).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..hls.schedule import HybridSchedule

if TYPE_CHECKING:  # pragma: no cover
    from ..hls.synthesizer import SynthesisResult


class ValveAction(enum.Enum):
    SEAL = "seal"            # close the container's isolation valves
    OPEN = "open"            # open them again
    PUMP_START = "pump_start"
    PUMP_STOP = "pump_stop"
    ROUTE = "route"          # actuate a transportation path end to end
    OPEN_ENDED = "open_ended"  # indeterminate op: closure is a runtime event


@dataclass(frozen=True)
class ValveEvent:
    """One timed controller command."""

    layer: int
    time: int
    action: ValveAction
    device_uid: str
    op_uid: str = ""
    #: second endpoint for ROUTE events.
    peer_device_uid: str = ""

    @property
    def switch_cost(self) -> int:
        """Valve switches this command implies (first-order estimate)."""
        if self.action in (ValveAction.SEAL, ValveAction.OPEN):
            return 2  # the isolation valve pair
        if self.action in (ValveAction.PUMP_START, ValveAction.PUMP_STOP):
            return 3  # peristaltic triple
        if self.action is ValveAction.ROUTE:
            return 2  # one routing valve per endpoint
        return 0


@dataclass
class ControlProgram:
    """The full actuation sequence of a hybrid schedule."""

    events: list[ValveEvent] = field(default_factory=list)

    @property
    def total_switches(self) -> int:
        return sum(e.switch_cost for e in self.events)

    def for_layer(self, layer: int) -> list[ValveEvent]:
        return [e for e in self.events if e.layer == layer]

    def for_device(self, device_uid: str) -> list[ValveEvent]:
        return [
            e for e in self.events
            if e.device_uid == device_uid or e.peer_device_uid == device_uid
        ]

    def __len__(self) -> int:
        return len(self.events)

    def render(self) -> str:
        lines = []
        for event in self.events:
            subject = event.device_uid
            if event.peer_device_uid:
                subject += f"->{event.peer_device_uid}"
            lines.append(
                f"L{event.layer} t={event.time:>5} "
                f"{event.action.value:<10} {subject:<14} {event.op_uid}"
            )
        return "\n".join(lines)


def generate_control_program(result: "SynthesisResult") -> ControlProgram:
    """Compile the actuation sequence of a synthesis result."""
    schedule: HybridSchedule = result.schedule
    assay = result.assay
    devices = result.devices
    edge_transport = result.edge_transport
    events: list[ValveEvent] = []

    for layer in schedule.layers:
        for placement in sorted(
            layer.placements.values(), key=lambda p: (p.start, p.uid)
        ):
            device = devices[placement.device_uid]
            has_pump = "pump" in device.accessories
            events.append(
                ValveEvent(
                    layer.index, placement.start, ValveAction.SEAL,
                    placement.device_uid, placement.uid,
                )
            )
            if has_pump:
                events.append(
                    ValveEvent(
                        layer.index, placement.start, ValveAction.PUMP_START,
                        placement.device_uid, placement.uid,
                    )
                )
            if placement.indeterminate:
                events.append(
                    ValveEvent(
                        layer.index, placement.end, ValveAction.OPEN_ENDED,
                        placement.device_uid, placement.uid,
                    )
                )
                continue
            if has_pump:
                events.append(
                    ValveEvent(
                        layer.index, placement.end, ValveAction.PUMP_STOP,
                        placement.device_uid, placement.uid,
                    )
                )
            events.append(
                ValveEvent(
                    layer.index, placement.end, ValveAction.OPEN,
                    placement.device_uid, placement.uid,
                )
            )

    binding = schedule.binding
    layer_of = result.layering.layer_of
    for parent, child in assay.edges:
        dev_p, dev_c = binding[parent], binding[child]
        if dev_p == dev_c:
            continue
        child_layer, child_placement = schedule.find(child)
        transport = edge_transport.get((parent, child), 0)
        # The transfer arrives exactly when the child starts; cross-layer
        # transfers run at the start of the child's layer.
        if layer_of[parent] == child_layer:
            route_time = max(0, child_placement.start - transport)
        else:
            route_time = 0
        events.append(
            ValveEvent(
                child_layer, route_time, ValveAction.ROUTE, dev_p,
                f"{parent}->{child}", peer_device_uid=dev_c,
            )
        )

    events.sort(key=lambda e: (e.layer, e.time, e.action.value, e.op_uid))
    return ControlProgram(events=events)
