"""Event records for the runtime executor."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class EventKind(enum.Enum):
    OP_START = "op_start"
    OP_END = "op_end"
    #: an indeterminate operation finished one (failed) attempt and reruns.
    OP_RETRY = "op_retry"
    LAYER_START = "layer_start"
    LAYER_END = "layer_end"


@dataclass(frozen=True)
class Event:
    """One timestamped runtime event."""

    time: int
    kind: EventKind
    uid: str = ""
    layer: int = -1
    device: str = ""

    def __str__(self) -> str:
        subject = self.uid or f"layer {self.layer}"
        return f"t={self.time:>6} {self.kind.value:<12} {subject}"


@dataclass
class EventLog:
    """Ordered runtime events with simple query helpers."""

    events: list[Event] = field(default_factory=list)

    def record(self, event: Event) -> None:
        self.events.append(event)

    def of_kind(self, kind: EventKind) -> list[Event]:
        return [e for e in self.events if e.kind is kind]

    def for_op(self, uid: str) -> list[Event]:
        return [e for e in self.events if e.uid == uid]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
