"""Event records for the runtime executor."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class EventKind(enum.Enum):
    OP_START = "op_start"
    OP_END = "op_end"
    #: an indeterminate operation finished one (failed) attempt and reruns.
    OP_RETRY = "op_retry"
    LAYER_START = "layer_start"
    LAYER_END = "layer_end"


@dataclass(frozen=True)
class Event:
    """One timestamped runtime event."""

    time: int
    kind: EventKind
    uid: str = ""
    layer: int = -1
    device: str = ""

    def __str__(self) -> str:
        subject = self.uid or f"layer {self.layer}"
        return f"t={self.time:>6} {self.kind.value:<12} {subject}"


#: Sort rank of simultaneous events: completions before the retries and
#: boundary markers they enable, layer transitions before the next layer's
#: first starts.
_KIND_ORDER = {
    EventKind.OP_END: 0,
    EventKind.OP_RETRY: 1,
    EventKind.LAYER_END: 2,
    EventKind.LAYER_START: 3,
    EventKind.OP_START: 4,
}


@dataclass
class EventLog:
    """Ordered runtime events with simple query helpers.

    The executor records events per placement, not per timestamp, so the
    raw append order interleaves timelines; :meth:`finalize` restores
    chronological order once recording is done.
    """

    events: list[Event] = field(default_factory=list)

    def record(self, event: Event) -> None:
        self.events.append(event)

    def finalize(self) -> None:
        """Sort events chronologically (stable within a timestamp).

        Simultaneous events order completions first and starts last (see
        ``_KIND_ORDER``); events equal on both keys keep recording order.
        """
        self.events.sort(key=lambda e: (e.time, _KIND_ORDER[e.kind]))

    def of_kind(self, kind: EventKind) -> list[Event]:
        return [e for e in self.events if e.kind is kind]

    def for_op(self, uid: str) -> list[Event]:
        return [e for e in self.events if e.uid == uid]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
