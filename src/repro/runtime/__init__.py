"""Hybrid-schedule runtime execution (cyberphysical integration substrate).

The paper's hybrid schedules leave the completion of indeterminate
operations to run-time decisions.  This package simulates that run time: a
discrete-event executor plays a :class:`~repro.hls.schedule.HybridSchedule`
against sampled actual durations, enforcing layer barriers and device
reservations, and reports the realized makespan (resolving the symbolic
``I_k`` terms).
"""

from .actuation import (
    ControlProgram,
    ValveAction,
    ValveEvent,
    generate_control_program,
)
from .events import Event, EventKind, EventLog
from .executor import ExecutionReport, RetryModel, execute_schedule

__all__ = [
    "ControlProgram",
    "ValveAction",
    "ValveEvent",
    "generate_control_program",
    "Event",
    "EventKind",
    "EventLog",
    "ExecutionReport",
    "RetryModel",
    "execute_schedule",
]
