"""Execute a hybrid schedule against sampled indeterminate durations.

The executor models exactly the run-time protocol the paper's hybrid
scheduling assumes (Sec. 3):

* inside a layer, the fixed sub-schedule is followed literally — operation
  ``o`` starts ``placement.start`` time units after the layer began;
* indeterminate operations run at least their minimum duration and then keep
  retrying until success (e.g. single-cell capture has a per-attempt success
  probability of about 53 % [11]); each retry re-runs the minimum duration;
* the layer ends when *all* its operations — including every indeterminate
  tail — have completed; only then does the next layer's sub-schedule begin
  (the real-time termination decision);
* device exclusivity is asserted throughout.

The realized makespan therefore equals the schedule's fixed makespan plus
the realized values of the symbolic ``I_k`` terms.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..errors import SchedulingError
from ..hls.schedule import HybridSchedule
from .events import Event, EventKind, EventLog


@dataclass(frozen=True)
class RetryModel:
    """How indeterminate operations behave at run time.

    Every attempt takes the operation's minimum duration; each attempt
    succeeds with probability ``success_probability`` (the paper's
    single-cell capture reference [11] reports ~0.53), capped at
    ``max_attempts``.

    ``on_exhausted`` decides what happens when the cap is reached without
    success: ``"succeed"`` pretends the last attempt worked (useful for
    makespan studies), ``"fail"`` marks the operation failed — the run
    aborts after the failing layer (its descendants can never execute) and
    the report lists the casualties.
    """

    success_probability: float = 0.53
    max_attempts: int = 20
    on_exhausted: str = "succeed"

    def __post_init__(self) -> None:
        if not 0 < self.success_probability <= 1:
            raise SchedulingError("success probability must be in (0, 1]")
        if self.max_attempts < 1:
            raise SchedulingError("max_attempts must be >= 1")
        if self.on_exhausted not in ("succeed", "fail"):
            raise SchedulingError(
                f"on_exhausted must be 'succeed' or 'fail', "
                f"got {self.on_exhausted!r}"
            )

    def sample_attempts(self, rng: random.Random) -> tuple[int, bool]:
        """(number of attempts, succeeded) — geometric, capped."""
        attempts = 1
        while (
            attempts < self.max_attempts
            and rng.random() >= self.success_probability
        ):
            attempts += 1
        succeeded = True
        if attempts == self.max_attempts and self.on_exhausted == "fail":
            # The final attempt itself still has its chance.
            succeeded = rng.random() < self.success_probability
        return attempts, succeeded


@dataclass
class ExecutionReport:
    """Outcome of one simulated run."""

    makespan: int
    layer_spans: list[tuple[int, int]]
    #: realized extra time of each indeterminate layer tail, keyed by the
    #: 1-based layer term index (the paper's I_1, I_2, ...).
    realized_terms: dict[int, int]
    attempts: dict[str, int]
    log: EventLog = field(default_factory=EventLog)
    #: indeterminate operations that exhausted their attempts (only under
    #: ``on_exhausted="fail"``).
    failed_ops: list[str] = field(default_factory=list)
    #: layers that never ran because an earlier layer failed.
    aborted_layers: list[int] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return not self.failed_ops

    @property
    def total_indeterminate_extra(self) -> int:
        return sum(self.realized_terms.values())


def execute_schedule(
    schedule: HybridSchedule,
    retry_model: RetryModel | None = None,
    seed: int = 0,
) -> ExecutionReport:
    """Simulate one run of ``schedule``; deterministic for a given seed."""
    retry_model = retry_model or RetryModel()
    rng = random.Random(seed)
    log = EventLog()

    clock = 0
    layer_spans: list[tuple[int, int]] = []
    realized_terms: dict[int, int] = {}
    attempts: dict[str, int] = {}
    failed_ops: list[str] = []
    aborted_layers: list[int] = []
    term_index = 0

    for layer in schedule.layers:
        if failed_ops:
            aborted_layers.append(layer.index)
            continue
        layer_start = clock
        log.record(Event(clock, EventKind.LAYER_START, layer=layer.index))

        _assert_exclusive(layer)

        fixed_end = layer_start
        indeterminate_end = layer_start
        for placement in layer.placements.values():
            start = layer_start + placement.start
            log.record(
                Event(
                    start,
                    EventKind.OP_START,
                    uid=placement.uid,
                    layer=layer.index,
                    device=placement.device_uid,
                )
            )
            if placement.indeterminate:
                tries, succeeded = retry_model.sample_attempts(rng)
                attempts[placement.uid] = tries
                if not succeeded:
                    failed_ops.append(placement.uid)
                end = start + tries * placement.duration
                for attempt in range(1, tries):
                    log.record(
                        Event(
                            start + attempt * placement.duration,
                            EventKind.OP_RETRY,
                            uid=placement.uid,
                            layer=layer.index,
                            device=placement.device_uid,
                        )
                    )
                indeterminate_end = max(indeterminate_end, end)
            else:
                end = start + placement.duration
                fixed_end = max(fixed_end, end)
            log.record(
                Event(
                    end,
                    EventKind.OP_END,
                    uid=placement.uid,
                    layer=layer.index,
                    device=placement.device_uid,
                )
            )

        layer_end = max(fixed_end, indeterminate_end, layer_start)
        if layer.has_indeterminate:
            term_index += 1
            scheduled_end = layer_start + layer.makespan
            realized_terms[term_index] = layer_end - scheduled_end
        log.record(Event(layer_end, EventKind.LAYER_END, layer=layer.index))
        layer_spans.append((layer_start, layer_end))
        clock = layer_end

    log.finalize()
    return ExecutionReport(
        makespan=clock,
        layer_spans=layer_spans,
        realized_terms=realized_terms,
        attempts=attempts,
        log=log,
        failed_ops=failed_ops,
        aborted_layers=aborted_layers,
    )


def _assert_exclusive(layer) -> None:
    """Defensive device-exclusivity check on the fixed sub-schedule.

    Two violations are rejected: overlapping fixed windows on one device,
    and *any* placement starting at or after an indeterminate operation's
    start on the same device — an indeterminate operation must end its
    layer (paper constraint (14)), so nothing can be scheduled behind it;
    its realized completion is unknowable at synthesis time.
    """
    by_device: dict[str, list] = {}
    for placement in layer.placements.values():
        by_device.setdefault(placement.device_uid, []).append(placement)
    for device_uid, placements in by_device.items():
        placements.sort(key=lambda p: (p.start, p.indeterminate, p.uid))
        for first, second in zip(placements, placements[1:]):
            if first.indeterminate:
                raise SchedulingError(
                    f"device {device_uid}: {second.uid} scheduled after "
                    f"indeterminate {first.uid}, whose completion is "
                    f"unknowable at synthesis time"
                )
            if second.start < first.end:
                raise SchedulingError(
                    f"device {device_uid} double-booked: "
                    f"{first.uid} and {second.uid}"
                )
