"""Command-line interface.

Usage examples::

    repro-hls synthesize my_assay.json --max-devices 25 --out result.json
    repro-hls synthesize my_assay.json --conventional --gantt
    repro-hls throughput --case 2 --target-ii 40
    repro-hls throughput my_assay.json --variant-prefixes 0.5 0.75
    repro-hls layer my_assay.json --threshold 10
    repro-hls simulate my_assay.json --runs 32 --jobs 4 \\
        --faults exhaust:cap0 --policy resynth --trace-out trace.jsonl
    repro-hls table2 --cases 1 --time-limit 10
    repro-hls table3 --cases 2 3 --jobs 4 --profile
    repro-hls serve --port 8642 --store-dir ~/.cache/repro-hls
    repro-hls serve --port 8643 --store-dir /srv/repro --fleet \\
        --replica-id r2
    repro-hls submit --case 2 --server 127.0.0.1:8642 --out result.json
    repro-hls submit --case 2 --server 127.0.0.1:8642,127.0.0.1:8643 \\
        --hedge-after 0.5
    repro-hls jobs --server 127.0.0.1:8642 --metrics
    repro-hls chaos --seed 7 --jobs 2 --cases 1 2
    repro-hls chaos --scenario fleet --cases 1
    repro-hls demo

Exit codes: 0 success, 1 synthesis/service failure, 2 bad input
(unreadable or malformed assay JSON, bad fault spec, bad spec values).
"""

from __future__ import annotations

import argparse
import sys

from .assays import benchmark_assay
from .baselines import synthesize_conventional
from .errors import ReproError, SerializationError, SpecificationError
from .experiments import format_table2, format_table3, run_table2, run_table3
from .experiments.table2 import default_spec
from .hls import SynthesisSpec, synthesize
from .io import load_assay, render_gantt, save_result
from .layering import layer_assay


def _resolve_assay(args: argparse.Namespace):
    """The assay named by ``--case N`` or a positional JSON path."""
    case = getattr(args, "case", None)
    if case is not None and args.assay:
        raise SpecificationError(
            "give either an assay path or --case, not both"
        )
    if case is not None:
        try:
            return benchmark_assay(case)
        except ValueError as exc:
            raise SpecificationError(str(exc)) from None
    if not args.assay:
        raise SpecificationError("give an assay path or --case N")
    return load_assay(args.assay)


def _spec_from_args(args: argparse.Namespace) -> SynthesisSpec:
    return SynthesisSpec(
        max_devices=args.max_devices,
        threshold=args.threshold,
        time_limit=args.time_limit,
        max_iterations=args.max_iterations,
        backend=args.backend,
        mip_gap=getattr(args, "mip_gap", 0.0),
        scheduler=getattr(args, "scheduler", "portfolio"),
        jobs=getattr(args, "jobs", 1),
        conflict_mode=getattr(args, "conflicts", "eager"),
        enable_solver_sessions=not getattr(args, "no_solver_sessions", False),
        warm_cutoff=getattr(args, "warm_cutoff", False),
        storage_mode=getattr(args, "storage", None) or "off",
        storage_capacity=getattr(args, "storage_capacity", 4),
        throughput_mode=getattr(args, "throughput", None) or "off",
        target_ii=getattr(args, "target_ii", None),
        throughput_scheduler=getattr(args, "periodic_scheduler", "auto"),
        throughput_variants=tuple(
            getattr(args, "variant_prefixes", None) or ()
        ),
    )


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--max-devices", type=int, default=25, help="|D| cap")
    parser.add_argument(
        "--threshold", type=int, default=10,
        help="max indeterminate operations per layer (t)",
    )
    parser.add_argument(
        "--time-limit", type=float, default=20.0,
        help="seconds per layer ILP solve",
    )
    parser.add_argument("--max-iterations", type=int, default=2)
    parser.add_argument(
        "--backend", default="auto", choices=("auto", "highs", "bnb")
    )
    parser.add_argument(
        "--mip-gap", type=float, default=0.0,
        help="relative MIP gap at which a layer solve stops (0 = optimal)",
    )
    from .hls.backends import available_schedulers

    parser.add_argument(
        "--scheduler", default="portfolio", choices=available_schedulers(),
        help="per-layer scheduler backend (default: portfolio — the paper "
             "flow; lp-bound/approx-lp trade exactness for certified "
             "LP-relaxation bounds)",
    )
    parser.add_argument(
        "--conflicts", default="eager", metavar="MODE",
        help="device-conflict encoding (eager|lazy): eager emits every "
             "disjunction row up front (the reference flow); lazy "
             "separates violated conflict groups on demand during the "
             "solve",
    )
    parser.add_argument(
        "--no-solver-sessions", action="store_true",
        help="disable persistent per-layer solver sessions (forces "
             "from-scratch model encoding every pass; results are "
             "identical either way)",
    )
    parser.add_argument(
        "--warm-cutoff", action="store_true",
        help="bound each warm-started layer solve by the warm point's "
             "objective (optimality-preserving; changes within-gap "
             "tie-breaking, so it participates in solve fingerprints)",
    )
    parser.add_argument(
        "--storage", nargs="?", const="auto", default=None, metavar="MODE",
        help="storage synthesis mode for layer-crossing reagents "
             "(off|reservoir|channel|auto; bare --storage means auto; "
             "default: off — the storage-oblivious paper flow)",
    )
    parser.add_argument(
        "--storage-capacity", type=int, default=4,
        help="reagent slots per dedicated storage reservoir",
    )
    parser.add_argument(
        "--throughput", nargs="?", const="periodic", default=None,
        metavar="MODE",
        help="throughput mode (off|periodic; bare --throughput means "
             "periodic): re-time the one-shot result as a steady-state "
             "pipeline minimizing the initiation interval",
    )
    parser.add_argument(
        "--target-ii", type=int, default=None,
        help="stop the periodic II search at this initiation interval "
             "instead of pushing to the certified lower bound",
    )
    parser.add_argument(
        "--periodic-scheduler", default="auto", metavar="NAME",
        help="periodic scheduler backend (auto|ilp|greedy; auto runs the "
             "modulo ILP and degrades to the greedy modulo list scheduler "
             "when no MIP backend is usable)",
    )


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for speculative re-synthesis layer solves "
             "(results are identical for any value)",
    )


def _print_certificate(result) -> None:
    """One line of certified quality, when the run proved any.

    Conventional-baseline results have no layer solves (and therefore no
    certificates); the attributes are simply absent there.
    """
    import math as _math

    gap = getattr(result, "integrality_gap", None)
    bound = getattr(result, "lower_bound", None)
    if gap is None or bound is None:
        return
    if not (_math.isfinite(gap) and _math.isfinite(bound)):
        return
    print(f"certified gap  : {gap * 100:.2f}% (lower bound {bound:.1f})")


def _print_storage_plan(result) -> None:
    """One-line storage plan summary, when one was synthesized."""
    plan = getattr(result, "storage_plan", None)
    if plan is None:
        return
    print(
        f"storage        : mode={plan.mode} hold={plan.held_count} "
        f"channel={plan.channel_count} reservoir={plan.reservoir_count} "
        f"({len(plan.reservoirs)} reservoir(s), cost {plan.total_cost:g})"
    )


def _print_throughput(tr) -> None:
    """The periodic block every throughput-aware verb prints."""
    stats = tr.stats
    gap = stats.integrality_gap
    gap_note = f", gap {gap * 100:.2f}%" if gap is not None else ""
    degraded = " [degraded to greedy]" if tr.degraded else ""
    print(
        f"initiation II  : {tr.ii} (one-shot makespan {tr.base_makespan}, "
        f"{tr.speedup:.2f}x steady-state throughput)"
    )
    print(
        f"periodic       : latency {tr.latency}, lower bound "
        f"{stats.lower_bound:g}{gap_note}, {stats.status}{degraded}"
    )
    counters = tr.pool_counters
    print(
        f"II search      : {len(tr.probes)} probe(s) via {tr.scheduler} "
        f"(sessions created {counters.get('created', 0)} "
        f"reused {counters.get('reused', 0)} "
        f"rebuilt {counters.get('rebuilt', 0)})"
    )


def _cmd_synthesize(args: argparse.Namespace) -> int:
    assay = _resolve_assay(args)
    spec = _spec_from_args(args)
    if args.conventional:
        result = synthesize_conventional(assay, spec)
    else:
        result = synthesize(assay, spec)
    print(f"assay          : {assay.name} ({len(assay)} ops)")
    print(f"execution time : {result.makespan_expression}")
    print(f"devices        : {result.num_devices}")
    print(f"paths          : {result.num_paths}")
    _print_storage_plan(result)
    _print_certificate(result)
    if spec.throughput_mode == "periodic" and not args.conventional:
        from .periodic import schedule_throughput

        _print_throughput(schedule_throughput(result, spec))
    for record in result.history:
        print(
            f"  {record.label:<9} makespan={record.fixed_makespan} "
            f"devices={record.num_devices} paths={record.num_paths}"
        )
    if args.profile:
        from .experiments import format_profile, synthesis_profile

        print("\nsolve profile:")
        print(format_profile(synthesis_profile(result)))
    if args.gantt:
        print()
        print(render_gantt(result.schedule))
    if args.out:
        save_result(result, args.out, deterministic=args.deterministic)
        print(f"result written to {args.out}")
    return 0


def _cmd_throughput(args: argparse.Namespace) -> int:
    import dataclasses

    from .periodic import (
        derive_variants,
        schedule_throughput,
        synthesize_shared,
    )

    assay = _resolve_assay(args)
    spec = _spec_from_args(args)
    if spec.throughput_mode == "off":
        # The verb implies periodic mode; --throughput off is still
        # honored as an explicit no-op guard elsewhere, not here.
        spec = dataclasses.replace(spec, throughput_mode="periodic")

    variants = derive_variants(assay, spec.throughput_variants)
    for path in args.variants or ():
        variants.append(load_assay(path))

    if len(variants) == 1:
        result = synthesize(assay, spec)
        print(f"assay          : {assay.name} ({len(assay)} ops)")
        print(f"one-shot       : {result.makespan_expression}, "
              f"{result.num_devices} devices")
        _print_throughput(schedule_throughput(result, spec))
        return 0

    shared = synthesize_shared(variants, spec)
    print(f"variants       : {len(variants)} "
          f"(shared skeleton: {len(shared.skeleton)} ops)")
    print(f"devices        : {shared.shared_devices} shared vs "
          f"{shared.independent_devices} independently synthesized")
    for report in shared.reports:
        print(
            f"  {report.name:<24} ops={report.num_ops:<3} "
            f"shared II={report.shared_ii:<4} "
            f"independent II={report.independent_ii}"
        )
    return 0


def _cmd_layer(args: argparse.Namespace) -> int:
    assay = load_assay(args.assay)
    layering = layer_assay(assay, args.threshold)
    print(f"{layering.num_layers} layer(s) for {assay.name}")
    for layer in layering.layers:
        ind = ", ".join(layer.indeterminate_uids) or "-"
        print(f"  layer {layer.index}: {len(layer)} ops, indeterminate: {ind}")
    return 0


def _table_spec(args: argparse.Namespace) -> SynthesisSpec:
    import dataclasses

    return dataclasses.replace(
        default_spec(time_limit=args.time_limit),
        threshold=args.threshold,
        mip_gap=args.mip_gap,
        jobs=args.jobs,
    )


def _cmd_table2(args: argparse.Namespace) -> int:
    if args.via_server:
        from .experiments.remote import run_table2_via_server
        from .service import ServiceClient

        client = ServiceClient.from_address(args.via_server)
        rows = run_table2_via_server(
            client, _table_spec(args), cases=tuple(args.cases)
        )
    else:
        rows = run_table2(_table_spec(args), cases=tuple(args.cases))
    print(format_table2(rows))
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    from .experiments import export_profiles, format_profile
    from .experiments.report import deterministic_profile

    if args.via_server:
        from .experiments.remote import run_table3_via_server
        from .service import ServiceClient

        client = ServiceClient.from_address(args.via_server)
        rows = run_table3_via_server(
            client, _table_spec(args), cases=tuple(args.cases)
        )
    else:
        rows = run_table3(_table_spec(args), cases=tuple(args.cases))
    if args.deterministic or args.via_server:
        # Strip wall-clock telemetry so a --via-server run and a direct
        # --deterministic run print and export byte-identical output.
        for row in rows:
            row.profile = deterministic_profile(row.profile)
    print(format_table3(rows))
    if args.profile:
        for row in rows:
            print(f"\ncase {row.case} solve profile:")
            print(format_profile(row.profile))
    if args.profile_json:
        export_profiles(
            {row.case: row.profile for row in rows}, args.profile_json
        )
        print(f"\nsolve profiles written to {args.profile_json}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .analysis import schedule_stats, storage_report
    from .analysis.stats import format_stats
    from .experiments import export_profiles, format_profile, synthesis_profile

    assay = load_assay(args.assay)
    result = synthesize(assay, _spec_from_args(args))
    print(format_stats(schedule_stats(result.schedule)))
    report = storage_report(result)
    print(f"storage crossings: {report.total_crossings} "
          f"(peak demand {report.peak_demand})")
    if getattr(args, "storage", None) is not None:
        boundaries = sorted({r.boundary for r in report.reagents})
        if boundaries:
            print("\nstorage demand by boundary:")
            print(f"  {'boundary':>8} {'crossings':>9} {'held':>5} "
                  f"{'buffered':>8}")
            for boundary in boundaries:
                reagents = report.at_boundary(boundary)
                held = sum(1 for r in reagents if r.held_in_place)
                print(f"  {boundary:>8} {len(reagents):>9} {held:>5} "
                      f"{report.demand(boundary):>8}")
        else:
            print("\nno layer-crossing reagents: nothing to store")
        _print_storage_plan(result)
    _print_certificate(result)
    if args.profile or args.profile_json:
        profile = synthesis_profile(result)
        if args.profile:
            print("\nsolve profile:")
            print(format_profile(profile))
        if args.profile_json:
            export_profiles({0: profile}, args.profile_json)
            print(f"solve profile written to {args.profile_json}")
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    from .io import assay_to_dot, chip_to_dot
    from .layering import layer_assay as _layer

    assay = load_assay(args.assay)
    if args.view == "assay":
        layering = _layer(assay, args.threshold) if args.layers else None
        print(assay_to_dot(assay, layering))
        return 0
    result = synthesize(assay, _spec_from_args(args))
    print(chip_to_dot(result))
    return 0


def _cmd_place(args: argparse.Namespace) -> int:
    from .layout import GridPlacer, layout_refined_transport

    assay = load_assay(args.assay)
    result = synthesize(assay, _spec_from_args(args))
    estimator = layout_refined_transport(
        assay, result.spec, result.schedule.binding,
        placer=GridPlacer(seed=args.seed),
    )
    placement = estimator.last_placement
    if placement is None:
        print("all operations share one device; nothing to place")
        return 0
    print(placement.layout.render())
    print(f"\nweighted channel length: {placement.cost:g} "
          f"(improved {placement.improvement:.0%} over the initial grid)")
    for pair, dist in sorted(placement.distances.items()):
        usage = estimator.path_usage.get(pair, 0)
        print(f"  {pair[0]} <-> {pair[1]}: distance {dist}, usage {usage}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .cyberphysical import (
        CampaignConfig,
        FaultPlan,
        format_campaign,
        run_campaign,
        write_trace,
    )
    from .runtime import RetryModel

    # Parse inputs before the (expensive) solve so a bad fault spec
    # fails fast with exit code 2.
    assay = load_assay(args.assay)
    faults = FaultPlan.parse(args.faults) if args.faults else FaultPlan()
    result = synthesize(assay, _spec_from_args(args))
    print(f"assay          : {assay.name} ({len(assay)} ops)")
    print(f"schedule       : {result.makespan_expression}, "
          f"{result.num_devices} devices")

    retry_model = RetryModel(
        success_probability=args.success_probability,
        max_attempts=args.max_attempts,
        on_exhausted=args.on_exhausted,
    )
    config = CampaignConfig(
        runs=args.runs,
        seed=args.seed,
        jobs=args.jobs,
        policies=(args.policy,),
        faults=faults,
        retry_model=retry_model,
        keep_traces=bool(args.trace_out),
    )
    outcome = run_campaign(result, config)
    print(f"campaign       : {config.runs} runs x {config.jobs} job(s), "
          f"policy '{args.policy}', {len(faults)} fault(s) injected, "
          f"{outcome.wall_time:.1f}s wall")
    print(format_campaign(outcome.stats))
    if args.trace_out:
        lines = write_trace(args.trace_out, outcome.trace_records())
        print(f"trace          : {lines} records -> {args.trace_out}")
    if args.stats_json:
        from pathlib import Path

        Path(args.stats_json).write_text(outcome.stats.to_json_text() + "\n")
        print(f"stats          : written to {args.stats_json}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import ServerConfig, run_server

    if (args.fleet or args.replica_id) and not args.store_dir:
        print("error: --fleet requires --store-dir (the shared store)",
              file=sys.stderr)
        return 2
    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        store_dir=args.store_dir,
        store_capacity=args.store_capacity,
        job_timeout=args.job_timeout,
        journal_dir=args.journal_dir,
        enable_degrade=not args.no_degrade,
        fleet=args.fleet,
        replica_id=args.replica_id,
        lease_ttl=args.lease_ttl,
        heartbeat_interval=args.heartbeat_interval,
        compact_min_bytes=args.compact_min_bytes,
        compact_min_age=args.compact_min_age,
    )
    fleet_note = ""
    if args.fleet or args.replica_id:
        fleet_note = f", fleet replica {args.replica_id or 'replica-<pid>'}"
    run_server(
        config,
        announce=lambda server: print(
            f"synthesis server listening on "
            f"{config.host}:{server.port} "
            f"({config.workers} worker(s), "
            f"store: {config.store_dir or 'in-memory'}"
            f"{fleet_note})",
            flush=True,
        ),
    )
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json as _json

    from .service import FleetClient, HedgePolicy, ServiceClient

    if "," in args.server:
        hedge = None
        if args.hedge_after is not None:
            hedge = HedgePolicy(delay=args.hedge_after)
        client = FleetClient.from_addresses(args.server, hedge=hedge)
    else:
        client = ServiceClient.from_address(args.server)
    assay = _resolve_assay(args)
    spec = _spec_from_args(args)
    method = "conventional" if args.conventional else "hls"
    handle = client.submit(
        assay, spec, method=method, priority=args.priority,
        timeout=args.job_timeout,
    )
    print(f"job {handle.id}: {handle.status} "
          f"(fingerprint {handle.fingerprint[:12]})")
    if args.no_wait:
        return 0
    handle = client.wait(handle.id, deadline=args.deadline)
    if handle.status != "done":
        error = handle.error or {}
        kind = error.get("kind", handle.status)
        message = error.get("message", "no detail")
        print(f"error: job {handle.id} {handle.status} "
              f"({kind}: {message})", file=sys.stderr)
        return 1
    payload = client.result(handle.id)
    report = payload["result"]
    job = payload.get("job", {})
    print(f"job {handle.id}: done (source {job.get('source', '?')})")
    print(f"execution time : {report['makespan']}")
    print(f"devices        : {report['num_devices']}")
    print(f"paths          : {report['num_paths']}")
    storage = payload.get("storage")
    if storage:
        print(
            f"storage        : mode={storage['mode']} "
            f"hold={storage['held']} channel={storage['channel']} "
            f"reservoir={storage['reservoir']} "
            f"(cost {storage['total_cost']:g})"
        )
    periodic = payload.get("periodic")
    if periodic:
        bound = periodic.get("lower_bound")
        bound_note = f", lower bound {bound:g}" if bound is not None else ""
        print(
            f"initiation II  : {periodic['ii']} "
            f"(one-shot makespan {periodic['base_makespan']}"
            f"{bound_note})"
        )
    quality = payload.get("quality") or {}
    gap = quality.get("integrality_gap")
    if payload.get("degraded"):
        note = (
            f"certified within {gap * 100:.2f}% of optimal"
            if gap is not None
            else "no certified bound"
        )
        print(f"degraded result: {note}")
    elif gap is not None:
        print(f"certified gap  : {gap * 100:.2f}%")
    if args.out:
        # Same bytes as `synthesize --deterministic --out` writes: the
        # worker serializes with result_to_json(deterministic=True).
        with open(args.out, "w", encoding="utf-8") as handle_out:
            handle_out.write(_json.dumps(report, indent=2))
        print(f"result written to {args.out}")
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    import json as _json

    from .service import ServiceClient

    client = ServiceClient.from_address(args.server)
    if args.metrics:
        print(_json.dumps(client.metrics(), indent=2, sort_keys=True))
        return 0
    handles = client.jobs()
    if not handles:
        print("no jobs")
        return 0
    for handle in handles:
        note = f" (coalesced {handle.coalesced})" if handle.coalesced else ""
        source = f" source={handle.source}" if handle.source else ""
        print(f"{handle.id}  {handle.status:<9} "
              f"{handle.fingerprint[:12]}{source}{note}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json as _json

    if args.scenario == "fleet":
        from .service.chaos import (
            FleetChaosConfig,
            format_fleet_chaos,
            run_fleet_chaos,
        )

        fleet_config = FleetChaosConfig(
            seed=args.seed,
            cases=tuple(args.cases),
            workdir=args.workdir,
            workers=args.workers,
            time_limit=args.time_limit,
            deadline=args.deadline,
            lease_ttl=args.lease_ttl,
            claim_ttl=args.claim_ttl,
            partition=not args.no_partition,
        )
        fleet_report = run_fleet_chaos(fleet_config)
        if args.json:
            print(_json.dumps(
                fleet_report.to_json(), indent=2, sort_keys=True
            ))
        else:
            print(format_fleet_chaos(fleet_report))
        return 0 if fleet_report.ok else 1

    from .service.chaos import ChaosConfig, format_chaos, run_chaos

    config = ChaosConfig(
        seed=args.seed,
        jobs=args.jobs,
        cases=tuple(args.cases),
        workdir=args.workdir,
        workers=args.workers,
        time_limit=args.time_limit,
        deadline=args.deadline,
    )
    report = run_chaos(config)
    if args.json:
        print(_json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(format_chaos(report))
    return 0 if report.ok else 1


def _cmd_demo(args: argparse.Namespace) -> int:
    assay = benchmark_assay(1)
    spec = default_spec(time_limit=args.time_limit)
    result = synthesize(assay, spec)
    print(render_gantt(result.schedule))
    print(f"\nexecution time {result.makespan_expression}, "
          f"{result.num_devices} devices, {result.num_paths} paths")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-hls",
        description=(
            "Component-oriented high-level synthesis for continuous-flow "
            "microfluidics with hybrid scheduling (DAC 2017 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_syn = sub.add_parser("synthesize", help="synthesize an assay JSON file")
    p_syn.add_argument("assay", nargs="?", help="path to assay JSON")
    p_syn.add_argument("--case", type=int,
                       help="synthesize benchmark case N instead of a file")
    p_syn.add_argument("--conventional", action="store_true",
                       help="use the conventional (exact-matching) baseline")
    p_syn.add_argument("--gantt", action="store_true", help="print a Gantt chart")
    p_syn.add_argument("--out", help="write result JSON here")
    p_syn.add_argument(
        "--deterministic", action="store_true",
        help="omit wall-clock fields from --out so identical runs "
             "serialize byte-identically",
    )
    p_syn.add_argument("--profile", action="store_true",
                       help="print per-layer solve telemetry and per-pass "
                            "stage timings")
    _add_spec_arguments(p_syn)
    _add_jobs_argument(p_syn)
    p_syn.set_defaults(func=_cmd_synthesize)

    p_tp = sub.add_parser(
        "throughput",
        help="synthesize an assay and minimize its steady-state "
             "initiation interval (periodic scheduling)",
    )
    p_tp.add_argument("assay", nargs="?", help="path to assay JSON")
    p_tp.add_argument("--case", type=int,
                      help="use benchmark case N instead of a file")
    p_tp.add_argument(
        "--variants", nargs="+", metavar="ASSAY",
        help="additional assay variant JSON files sharing one chip "
             "(triggers shared-binding multi-variant synthesis)",
    )
    p_tp.add_argument(
        "--variant-prefixes", type=float, nargs="+", metavar="FRACTION",
        help="derive topological-prefix variants at these fractions of "
             "the assay, e.g. 0.5 0.75",
    )
    _add_spec_arguments(p_tp)
    _add_jobs_argument(p_tp)
    p_tp.set_defaults(func=_cmd_throughput)

    p_layer = sub.add_parser("layer", help="show the layering of an assay")
    p_layer.add_argument("assay")
    p_layer.add_argument("--threshold", type=int, default=10)
    p_layer.set_defaults(func=_cmd_layer)

    p_t2 = sub.add_parser("table2", help="regenerate the paper's Table 2")
    p_t2.add_argument("--cases", type=int, nargs="+", default=[1, 2, 3])
    p_t2.add_argument("--time-limit", type=float, default=20.0)
    p_t2.add_argument("--threshold", type=int, default=10)
    p_t2.add_argument("--mip-gap", type=float, default=0.0)
    p_t2.add_argument("--via-server", metavar="HOST:PORT",
                      help="run every case through a synthesis server "
                           "instead of in-process")
    _add_jobs_argument(p_t2)
    p_t2.set_defaults(func=_cmd_table2)

    p_t3 = sub.add_parser("table3", help="regenerate the paper's Table 3")
    p_t3.add_argument("--cases", type=int, nargs="+", default=[2, 3])
    p_t3.add_argument("--time-limit", type=float, default=20.0)
    p_t3.add_argument("--threshold", type=int, default=10)
    p_t3.add_argument("--mip-gap", type=float, default=0.0)
    _add_jobs_argument(p_t3)
    p_t3.add_argument("--profile", action="store_true",
                      help="print per-layer solve telemetry and per-pass "
                           "stage timings per case")
    p_t3.add_argument("--profile-json",
                      help="write per-case solve profiles to this JSON file")
    p_t3.add_argument("--via-server", metavar="HOST:PORT",
                      help="run every case through a synthesis server "
                           "instead of in-process (implies --deterministic)")
    p_t3.add_argument(
        "--deterministic", action="store_true",
        help="strip wall-clock fields from profiles so identical runs "
             "print and export byte-identically",
    )
    p_t3.set_defaults(func=_cmd_table3)

    p_stats = sub.add_parser(
        "stats", help="synthesize an assay and print schedule statistics"
    )
    p_stats.add_argument("assay")
    p_stats.add_argument("--profile", action="store_true",
                         help="print per-layer solve telemetry")
    p_stats.add_argument("--profile-json",
                         help="write the solve profile to this JSON file")
    _add_spec_arguments(p_stats)
    p_stats.set_defaults(func=_cmd_stats)

    p_dot = sub.add_parser("dot", help="export Graphviz DOT views")
    p_dot.add_argument("assay")
    p_dot.add_argument("--view", choices=("assay", "chip"), default="assay")
    p_dot.add_argument("--layers", action="store_true",
                       help="cluster the assay view by layer")
    _add_spec_arguments(p_dot)
    p_dot.set_defaults(func=_cmd_dot)

    p_place = sub.add_parser(
        "place", help="synthesize and place devices on a grid"
    )
    p_place.add_argument("assay")
    p_place.add_argument("--seed", type=int, default=0)
    _add_spec_arguments(p_place)
    p_place.set_defaults(func=_cmd_place)

    p_sim = sub.add_parser(
        "simulate",
        help="synthesize an assay and run a Monte-Carlo fault campaign",
    )
    p_sim.add_argument("assay", help="path to assay JSON")
    p_sim.add_argument("--runs", type=int, default=32,
                       help="number of seeded engine runs")
    p_sim.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = run inline)")
    p_sim.add_argument(
        "--faults", default="",
        help="comma-separated fault specs kind:target[@layer][*factor], "
             "e.g. 'exhaust:cap0,down:d1@2,slow:d0*2.5'",
    )
    p_sim.add_argument(
        "--policy", default="all",
        choices=("abort", "retry", "rebind", "resynth", "all"),
        help="recovery policy chain to run under",
    )
    p_sim.add_argument("--trace-out",
                       help="write a JSONL trace of every engine decision")
    p_sim.add_argument("--stats-json",
                       help="write the merged CampaignStats as canonical JSON")
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument("--success-probability", type=float, default=0.53,
                       help="per-attempt success probability of "
                            "indeterminate operations")
    p_sim.add_argument("--max-attempts", type=int, default=20)
    p_sim.add_argument("--on-exhausted", default="succeed",
                       choices=("succeed", "fail"))
    _add_spec_arguments(p_sim)
    p_sim.set_defaults(func=_cmd_simulate)

    p_serve = sub.add_parser(
        "serve", help="run a local synthesis server (HTTP/JSON)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642,
                         help="TCP port (0 = pick an ephemeral port)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="solver processes in the worker pool")
    p_serve.add_argument("--queue-capacity", type=int, default=32,
                         help="pending jobs before submissions get HTTP 429")
    p_serve.add_argument("--store-dir",
                         help="persist results here (default: in-memory)")
    p_serve.add_argument("--store-capacity", type=int, default=256,
                         help="stored results kept before LRU eviction")
    p_serve.add_argument("--journal-dir",
                         help="durable job-journal directory (default: "
                              "<store-dir>/journal when --store-dir is set)")
    p_serve.add_argument("--no-degrade", action="store_true",
                         help="disable the greedy-scheduler fallback for "
                              "jobs that exceed their wall-clock budget")
    p_serve.add_argument("--job-timeout", type=float, default=900.0,
                         help="wall-clock seconds allowed per job")
    p_serve.add_argument("--fleet", action="store_true",
                         help="share --store-dir with peer replicas via "
                              "the lease/fencing protocol")
    p_serve.add_argument("--replica-id",
                         help="stable fleet identity (implies --fleet; "
                              "default: replica-<pid>)")
    p_serve.add_argument("--lease-ttl", type=float, default=10.0,
                         help="seconds before an unrefreshed store lease "
                              "is considered stale and taken over")
    p_serve.add_argument("--heartbeat-interval", type=float, default=2.0,
                         help="seconds between lease heartbeats")
    p_serve.add_argument("--compact-min-bytes", type=int,
                         default=64 * 1024,
                         help="closed journal bytes that trigger "
                              "background compaction")
    p_serve.add_argument("--compact-min-age", type=float, default=300.0,
                         help="oldest closed-segment age (seconds) that "
                              "triggers background compaction")
    p_serve.set_defaults(func=_cmd_serve)

    p_sub = sub.add_parser(
        "submit", help="submit an assay to a running synthesis server"
    )
    p_sub.add_argument("assay", nargs="?", help="path to assay JSON")
    p_sub.add_argument("--case", type=int,
                       help="submit benchmark case N instead of a file")
    p_sub.add_argument("--server", default="127.0.0.1:8642",
                       metavar="HOST:PORT[,HOST:PORT...]",
                       help="one server, or a comma-separated fleet "
                            "(submissions are hedged across replicas)")
    p_sub.add_argument("--hedge-after", type=float, default=None,
                       metavar="SECONDS",
                       help="with a fleet --server list: fire a duplicate "
                            "submit to a second replica after this fixed "
                            "delay (default: adaptive p95)")
    p_sub.add_argument("--conventional", action="store_true",
                       help="request the conventional baseline method")
    p_sub.add_argument("--priority", type=int, default=0,
                       help="higher values dispatch first (default 0)")
    p_sub.add_argument("--no-wait", action="store_true",
                       help="print the job id and return immediately")
    p_sub.add_argument("--deadline", type=float, default=600.0,
                       help="seconds to wait for the result")
    p_sub.add_argument("--job-timeout", type=float, default=None,
                       help="per-job wall-clock budget on the server")
    p_sub.add_argument("--out", help="write the result JSON here "
                                     "(same bytes as synthesize "
                                     "--deterministic --out)")
    _add_spec_arguments(p_sub)
    p_sub.set_defaults(func=_cmd_submit)

    p_jobs = sub.add_parser(
        "jobs", help="list jobs (or metrics) of a running synthesis server"
    )
    p_jobs.add_argument("--server", default="127.0.0.1:8642",
                        metavar="HOST:PORT")
    p_jobs.add_argument("--metrics", action="store_true",
                        help="print the /metrics snapshot as JSON")
    p_jobs.set_defaults(func=_cmd_jobs)

    p_chaos = sub.add_parser(
        "chaos",
        help="run a deterministic fault-injection campaign against a "
             "real in-process synthesis server",
    )
    p_chaos.add_argument("--scenario", choices=("classic", "fleet"),
                         default="classic",
                         help="classic: single server, four fault kinds; "
                              "fleet: multiple replicas over one store "
                              "(lease takeover, fencing, coalescing)")
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="campaign seed (fault placement + jitter)")
    p_chaos.add_argument("--jobs", type=int, default=2,
                         help="duplicate submissions layered on wave 1")
    p_chaos.add_argument("--cases", type=int, nargs="+", default=[1, 2],
                         help="benchmark cases to submit (default: 1 2)")
    p_chaos.add_argument("--workdir",
                         help="parent dir for the campaign store/journal "
                              "(a fresh subdir is created and kept)")
    p_chaos.add_argument("--workers", type=int, default=2)
    p_chaos.add_argument("--time-limit", type=float, default=30.0,
                         help="per-layer ILP budget, seconds")
    p_chaos.add_argument("--deadline", type=float, default=600.0,
                         help="client-side wait per job, seconds")
    p_chaos.add_argument("--json", action="store_true",
                         help="print the report as JSON")
    p_chaos.add_argument("--lease-ttl", type=float, default=2.0,
                         help="fleet scenario: store-lease TTL, seconds")
    p_chaos.add_argument("--claim-ttl", type=float, default=3.0,
                         help="fleet scenario: in-flight claim TTL")
    p_chaos.add_argument("--no-partition", action="store_true",
                         help="fleet scenario: skip the partition/"
                              "fencing phase")
    p_chaos.set_defaults(func=_cmd_chaos)

    p_demo = sub.add_parser("demo", help="synthesize benchmark case 1 and show it")
    p_demo.add_argument("--time-limit", type=float, default=10.0)
    p_demo.set_defaults(func=_cmd_demo)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (SerializationError, SpecificationError) as exc:
        # Bad input (unreadable path, malformed assay/spec JSON, bad
        # fault spec): one line on stderr, argparse-style exit code.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
