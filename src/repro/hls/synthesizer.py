"""Progressive re-synthesis: result records and the ``synthesize`` façade.

Synthesis runs in passes over the layer sequence (paper Sec. 3.2):

* **initial pass** — layers are solved front to back; each layer inherits
  every device built so far (``D_i = D_{i-1} ∪ D'_i``) and pays only for the
  devices it newly integrates;
* **re-synthesis passes** — each layer ``L_i`` inherits ``D \\ D'_i``, the
  full device set of the previous pass minus the devices ``L_i`` itself
  introduced, so the configuration choices of *posterior* layers become
  visible (Fig. 6).  Between passes, transportation times are refined from
  the latest binding (Sec. 4.1).

Passes repeat while the relative makespan improvement exceeds
``spec.improvement_threshold`` (the paper's 10 % rule), up to
``spec.max_iterations``.

The machinery lives in sibling modules — :mod:`repro.hls.context` (run
state), :mod:`repro.hls.pipeline` (the stage sequence),
:mod:`repro.hls.backends` (per-layer scheduler strategies), and
:mod:`repro.hls.parallel` (speculative multi-process layer solves).  This
module keeps the public result types and the one-call entry point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..devices.device import GeneralDevice
from ..devices.inventory import DeviceInventory
from ..ilp import SolveStats, relative_gap
from ..layering import LayeringResult
from ..operations.assay import Assay
from .backends import layer_cost
from .cache import LayerSolveCache
from .context import PassState, SynthesisContext, beats, pass_objective
from .schedule import HybridSchedule
from .spec import SynthesisSpec
from .transport import TransportEstimator
from .validate import validate_result

if TYPE_CHECKING:  # pragma: no cover
    from ..storage.plan import StoragePlan

#: Backwards-compatible aliases — the pass machinery moved to
#: hls/context.py and hls/backends.py in the pipeline refactor.
_Pass = PassState
_beats = beats
_pass_objective = pass_objective

__all__ = [
    "IterationRecord",
    "SynthesisResult",
    "synthesize",
    "build_inventory",
    "layer_cost",
]


@dataclass
class IterationRecord:
    """Summary of one synthesis pass (Table 3 rows)."""

    index: int  # 0 = initial pass
    fixed_makespan: int
    num_devices: int
    num_paths: int
    layer_statuses: list[str]
    runtime: float
    #: per-layer solve telemetry, in layer order.
    layer_stats: list[SolveStats] = field(default_factory=list)
    #: wall-clock seconds per pipeline stage for this pass
    #: (``prepare`` / ``solve`` / ``apply``, plus ``transport_refine`` on
    #: re-synthesis passes).
    stage_timings: dict[str, float] = field(default_factory=dict)
    #: storage-plan summary of the pass (``None`` when storage_mode=off):
    #: reagents needing storage structure, and the plan's weighted cost.
    storage_demand: int | None = None
    storage_cost: float | None = None

    @property
    def label(self) -> str:
        return "Initial" if self.index == 0 else f"{self.index}. Ite."

    @property
    def cache_hits(self) -> int:
        return sum(1 for s in self.layer_stats if s.cache_hit)

    @property
    def ilp_solves(self) -> int:
        """Layers this pass actually solved (i.e. did not replay)."""
        return sum(1 for s in self.layer_stats if not s.cache_hit)

    @property
    def speculative_solves(self) -> int:
        """Layers adopted from a parallel worker's speculative solve."""
        return sum(1 for s in self.layer_stats if s.speculative)

    @property
    def lower_bound(self) -> float | None:
        """Certified lower bound on this pass's total layer objective.

        The sum of the per-layer bounds — valid only when *every* layer
        solve carried one, so a single uncertified layer voids the pass's
        certificate (``None``), never weakens it silently.
        """
        if not self.layer_stats:
            return None
        bounds = [s.lower_bound for s in self.layer_stats]
        if any(b is None for b in bounds):
            return None
        return sum(bounds)

    @property
    def total_objective(self) -> float | None:
        """Sum of the per-layer achieved objectives, when all are known."""
        if not self.layer_stats:
            return None
        objectives = [s.objective for s in self.layer_stats]
        if any(o is None for o in objectives):
            return None
        return sum(objectives)

    @property
    def integrality_gap(self) -> float | None:
        """Certified relative gap of this pass's schedule, or ``None``.

        ``(total objective - total lower bound) / total objective`` over
        the per-layer solves; 0.0 means every layer was proven optimal.
        """
        return relative_gap(self.total_objective, self.lower_bound)


@dataclass
class SynthesisResult:
    """Complete synthesis output."""

    assay: Assay
    spec: SynthesisSpec
    layering: LayeringResult
    schedule: HybridSchedule
    devices: dict[str, GeneralDevice]
    paths: set[tuple[str, str]]
    history: list[IterationRecord] = field(default_factory=list)
    runtime: float = 0.0
    transport: TransportEstimator | None = None
    #: the per-edge transportation estimates the selected pass scheduled
    #: against (validation replays dependencies with exactly these).
    edge_transport: dict[tuple[str, str], int] = field(default_factory=dict)
    #: layer-solve-cache counters of the run (entries/capacity/hits/
    #: misses/evictions — see :meth:`LayerSolveCache.counters`); empty when
    #: the run had no cache.
    cache_counters: dict[str, int] = field(default_factory=dict)
    #: synthesized storage decisions of the selected pass (see
    #: :mod:`repro.storage`); ``None`` when ``storage_mode`` is ``off``.
    storage_plan: "StoragePlan | None" = None

    @property
    def fixed_makespan(self) -> int:
        return self.schedule.fixed_makespan

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def num_paths(self) -> int:
        return len(self.paths)

    @property
    def makespan_expression(self) -> str:
        return self.schedule.makespan_expression()

    @property
    def solve_stats(self) -> list[SolveStats]:
        """All per-layer solve records across every pass, in pass order."""
        return [s for record in self.history for s in record.layer_stats]

    @property
    def cache_hits(self) -> int:
        return sum(1 for s in self.solve_stats if s.cache_hit)

    @property
    def ilp_solves(self) -> int:
        """Layer solves actually performed (cache hits excluded)."""
        return sum(1 for s in self.solve_stats if not s.cache_hit)

    @property
    def speculative_solves(self) -> int:
        """Layer solves adopted from parallel workers (see hls/parallel)."""
        return sum(1 for s in self.solve_stats if s.speculative)

    @property
    def total_nodes(self) -> int:
        """Branch-and-bound nodes explored across all layer solves."""
        return sum(s.nodes for s in self.solve_stats)

    @property
    def total_solve_time(self) -> float:
        return sum(s.solve_time for s in self.solve_stats)

    @property
    def _certified_record(self) -> "IterationRecord | None":
        """The pass with the tightest quality certificate, if any."""
        certified = [
            r for r in self.history if r.integrality_gap is not None
        ]
        if not certified:
            return None
        return min(certified, key=lambda r: r.integrality_gap)

    @property
    def lower_bound(self) -> float | None:
        """Certified lower bound of the best-certified pass (see
        :attr:`integrality_gap`); ``None`` when no pass was certified."""
        record = self._certified_record
        return record.lower_bound if record is not None else None

    @property
    def integrality_gap(self) -> float | None:
        """The tightest certified gap any pass achieved, or ``None``.

        A pass is certified when every one of its layer solves carried a
        proven lower bound; its gap certifies that pass's schedule was
        within that fraction of the per-layer optima.
        """
        record = self._certified_record
        return record.integrality_gap if record is not None else None

    def validate(self) -> None:
        validate_result(self)
        if self.storage_plan is not None:
            from ..storage import validate_storage_plan

            validate_storage_plan(
                self.storage_plan,
                self.assay,
                self.layering,
                self.schedule,
                self.spec,
            )


def synthesize(
    assay: Assay,
    spec: SynthesisSpec | None = None,
    transport: TransportEstimator | None = None,
    cache: LayerSolveCache | None = None,
    jobs: int | None = None,
) -> SynthesisResult:
    """Run the full component-oriented synthesis flow on ``assay``.

    Thin façade over :class:`repro.hls.pipeline.SynthesisPipeline`:
    builds a :class:`repro.hls.context.SynthesisContext` and runs the
    stage sequence.  ``transport`` overrides the transportation estimator
    — e.g. a :class:`repro.layout.LayoutTransportEstimator` that refines
    from an actual device placement instead of usage ranks.  ``cache``
    supplies an external cross-run :class:`LayerSolveCache` (used by
    contingency re-synthesis to replay layer solves across repeated
    re-planning); when omitted, a per-run cache is created according to
    ``spec.enable_solve_cache``.  ``jobs`` overrides ``spec.jobs``:
    worker processes for re-synthesis layer solves (results are identical
    for any value — see :mod:`repro.hls.parallel`).
    """
    from .pipeline import SynthesisPipeline

    context = SynthesisContext(
        assay=assay,
        spec=spec or SynthesisSpec(),
        transport=transport,
        cache=cache,
        jobs=jobs,
        started=time.monotonic(),
    )
    return SynthesisPipeline().run(context)


def build_inventory(result: SynthesisResult) -> DeviceInventory:
    """Package a result's devices as a :class:`DeviceInventory` snapshot."""
    inventory = DeviceInventory(result.spec.max_devices)
    for layer in result.schedule.layers:
        for placement in layer.placements.values():
            uid = placement.device_uid
            if uid not in inventory:
                inventory.add(result.devices[uid], layer.index)
    return inventory


def _solve_layer(
    problem,
    spec: SynthesisSpec,
    allocate_uid,
    cache: LayerSolveCache | None = None,
    warm_from=None,
):
    """One layer solve through the pipeline's solve stage.

    Kept as a module-level function (the pre-pipeline entry point) for
    tests and tools that exercise a single layer: cache replay first, then
    the spec's scheduler backend (see ``hls/backends.py``).
    """
    from .pipeline import LayerSolveStage

    return LayerSolveStage().solve(
        problem, spec, allocate_uid, cache=cache, warm_from=warm_from
    )


def _paths_excluding_layer(assay, binding, layer_uids):
    """Compatibility alias for :func:`repro.hls.pipeline.paths_excluding_layer`."""
    from .pipeline import paths_excluding_layer

    return paths_excluding_layer(assay, binding, layer_uids)


def _rebase_warm_result(result, fixed_devices, previous_devices):
    """Compatibility alias for :func:`repro.hls.pipeline.rebase_warm_result`."""
    from .pipeline import rebase_warm_result

    return rebase_warm_result(result, fixed_devices, previous_devices)
