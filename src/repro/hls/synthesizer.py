"""Progressive re-synthesis driver (paper Sec. 3.2).

Synthesis runs in passes over the layer sequence:

* **initial pass** — layers are solved front to back; each layer inherits
  every device built so far (``D_i = D_{i-1} ∪ D'_i``) and pays only for the
  devices it newly integrates;
* **re-synthesis passes** — each layer ``L_i`` inherits ``D \\ D'_i``, the
  full device set of the previous pass minus the devices ``L_i`` itself
  introduced, so the configuration choices of *posterior* layers become
  visible (Fig. 6).  Between passes, transportation times are refined from
  the latest binding (Sec. 4.1).

Passes repeat while the relative makespan improvement exceeds
``spec.improvement_threshold`` (the paper's 10 % rule), up to
``spec.max_iterations``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from ..devices.device import GeneralDevice
from ..devices.inventory import DeviceInventory
from ..errors import InfeasibleError, SchedulingError, SolverError
from ..ilp import Solution, SolveStats, SolveStatus
from ..layering import LayeringResult, layer_assay
from ..operations.assay import Assay
from .cache import LayerSolveCache
from .decode import LayerSolveResult, decode_layer_solution
from .heuristic import schedule_layer_greedy
from .milp_model import LayerProblem, build_layer_model, encode_layer_start
from .schedule import HybridSchedule, LayerSchedule
from .spec import SynthesisSpec
from .transport import TransportEstimator, path_key
from .validate import validate_result


@dataclass
class IterationRecord:
    """Summary of one synthesis pass (Table 3 rows)."""

    index: int  # 0 = initial pass
    fixed_makespan: int
    num_devices: int
    num_paths: int
    layer_statuses: list[str]
    runtime: float
    #: per-layer solve telemetry, in layer order.
    layer_stats: list[SolveStats] = field(default_factory=list)

    @property
    def label(self) -> str:
        return "Initial" if self.index == 0 else f"{self.index}. Ite."

    @property
    def cache_hits(self) -> int:
        return sum(1 for s in self.layer_stats if s.cache_hit)

    @property
    def ilp_solves(self) -> int:
        """Layers this pass actually solved (i.e. did not replay)."""
        return sum(1 for s in self.layer_stats if not s.cache_hit)


@dataclass
class SynthesisResult:
    """Complete synthesis output."""

    assay: Assay
    spec: SynthesisSpec
    layering: LayeringResult
    schedule: HybridSchedule
    devices: dict[str, GeneralDevice]
    paths: set[tuple[str, str]]
    history: list[IterationRecord] = field(default_factory=list)
    runtime: float = 0.0
    transport: TransportEstimator | None = None
    #: the per-edge transportation estimates the selected pass scheduled
    #: against (validation replays dependencies with exactly these).
    edge_transport: dict[tuple[str, str], int] = field(default_factory=dict)

    @property
    def fixed_makespan(self) -> int:
        return self.schedule.fixed_makespan

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def num_paths(self) -> int:
        return len(self.paths)

    @property
    def makespan_expression(self) -> str:
        return self.schedule.makespan_expression()

    @property
    def solve_stats(self) -> list[SolveStats]:
        """All per-layer solve records across every pass, in pass order."""
        return [s for record in self.history for s in record.layer_stats]

    @property
    def cache_hits(self) -> int:
        return sum(1 for s in self.solve_stats if s.cache_hit)

    @property
    def ilp_solves(self) -> int:
        """Layer solves actually performed (cache hits excluded)."""
        return sum(1 for s in self.solve_stats if not s.cache_hit)

    @property
    def total_nodes(self) -> int:
        """Branch-and-bound nodes explored across all layer solves."""
        return sum(s.nodes for s in self.solve_stats)

    @property
    def total_solve_time(self) -> float:
        return sum(s.solve_time for s in self.solve_stats)

    def validate(self) -> None:
        validate_result(self)


class _Pass:
    """State of one synthesis pass over all layers."""

    def __init__(self) -> None:
        self.devices: dict[str, GeneralDevice] = {}
        self.born: dict[str, int] = {}
        self.results: dict[int, LayerSolveResult] = {}
        self.binding: dict[str, str] = {}
        #: per-edge transportation estimates this pass was built with.
        self.transport_snapshot: dict[tuple[str, str], int] = {}
        #: frozen estimator state matching ``transport_snapshot``.
        self.transport_estimator: TransportEstimator | None = None

    @property
    def fixed_makespan(self) -> int:
        return sum(r.schedule.makespan for r in self.results.values())

    @property
    def all_cache_hits(self) -> bool:
        """True when every layer replayed a cached solve: the pass posed
        exactly the problems of an earlier pass, so iterating further
        cannot change anything."""
        return bool(self.results) and all(
            r.stats is not None and r.stats.cache_hit
            for r in self.results.values()
        )

    def schedule(self) -> HybridSchedule:
        return HybridSchedule(
            layers=[self.results[i].schedule for i in sorted(self.results)]
        )

    def used_devices(self) -> dict[str, GeneralDevice]:
        used = set(self.binding.values())
        return {uid: dev for uid, dev in self.devices.items() if uid in used}


def synthesize(
    assay: Assay,
    spec: SynthesisSpec | None = None,
    transport: TransportEstimator | None = None,
    cache: LayerSolveCache | None = None,
) -> SynthesisResult:
    """Run the full component-oriented synthesis flow on ``assay``.

    ``transport`` overrides the transportation estimator — e.g. a
    :class:`repro.layout.LayoutTransportEstimator` that refines from an
    actual device placement instead of usage ranks.  ``cache`` supplies an
    external cross-run :class:`LayerSolveCache` (used by contingency
    re-synthesis to replay layer solves across repeated re-planning); when
    omitted, a per-run cache is created according to
    ``spec.enable_solve_cache``.
    """
    spec = spec or SynthesisSpec()
    started = time.monotonic()

    layering = layer_assay(assay, spec.threshold)
    transport = transport or TransportEstimator(assay, spec)
    if cache is None:
        cache = LayerSolveCache() if spec.enable_solve_cache else None
    uid_counter = [0]

    def allocate_uid() -> str:
        uid = f"d{uid_counter[0]}"
        uid_counter[0] += 1
        return uid

    history: list[IterationRecord] = []

    current = _run_pass(
        assay, layering, spec, transport, allocate_uid, previous=None,
        cache=cache,
    )
    history.append(_record(0, assay, current, started))
    best = current

    for iteration in range(1, spec.max_iterations + 1):
        previous_makespan = current.fixed_makespan
        transport.refine(current.binding)
        candidate = _run_pass(
            assay, layering, spec, transport, allocate_uid, previous=current,
            cache=cache,
        )
        history.append(_record(iteration, assay, candidate, started))
        if _beats(candidate, best, assay, spec):
            best = candidate
        improvement = (
            (previous_makespan - candidate.fixed_makespan) / previous_makespan
            if previous_makespan
            else 0.0
        )
        current = candidate
        if improvement <= spec.improvement_threshold:
            break
        if candidate.all_cache_hits:
            # Every layer replayed an earlier solve: the loop has converged.
            break

    schedule = best.schedule()
    paths = schedule.transportation_paths(assay.edges)
    result = SynthesisResult(
        assay=assay,
        spec=spec,
        layering=layering,
        schedule=schedule,
        devices=best.used_devices(),
        paths=paths,
        history=history,
        runtime=time.monotonic() - started,
        transport=best.transport_estimator or transport,
        edge_transport=dict(best.transport_snapshot),
    )
    result.validate()
    return result


def _pass_objective(state: _Pass, assay: Assay, spec: SynthesisSpec) -> float:
    """A pass's full weighted objective (makespan, area, processing, paths).

    Mirrors the per-layer ILP objective at whole-schedule scope; used to
    rank passes whose fixed makespans tie.
    """
    costs = spec.cost_model
    weights = spec.weights
    devices = state.used_devices().values()
    schedule = state.schedule()
    return (
        weights.time * state.fixed_makespan
        + weights.area * sum(d.area(costs) for d in devices)
        + weights.processing * sum(d.processing_cost(costs) for d in devices)
        + weights.paths * len(schedule.transportation_paths(assay.edges))
    )


def _beats(candidate: _Pass, best: _Pass, assay: Assay, spec: SynthesisSpec) -> bool:
    """Whether ``candidate`` should replace the best pass so far.

    Primary criterion is the fixed makespan; ties are broken on the full
    weighted objective so an equal-makespan pass only wins by actually
    being cheaper (fewer/smaller devices or fewer paths).  A full tie
    keeps the earlier pass.
    """
    if candidate.fixed_makespan != best.fixed_makespan:
        return candidate.fixed_makespan < best.fixed_makespan
    return _pass_objective(candidate, assay, spec) < _pass_objective(
        best, assay, spec
    )


def _record(
    index: int, assay: Assay, state: _Pass, started: float
) -> IterationRecord:
    schedule = state.schedule()
    return IterationRecord(
        index=index,
        fixed_makespan=state.fixed_makespan,
        num_devices=len(state.used_devices()),
        num_paths=len(schedule.transportation_paths(assay.edges)),
        layer_statuses=[
            state.results[i].solver_status for i in sorted(state.results)
        ],
        runtime=time.monotonic() - started,
        layer_stats=[
            state.results[i].stats
            for i in sorted(state.results)
            if state.results[i].stats is not None
        ],
    )


def _run_pass(
    assay: Assay,
    layering: LayeringResult,
    spec: SynthesisSpec,
    transport: TransportEstimator,
    allocate_uid,
    previous: _Pass | None,
    cache: LayerSolveCache | None = None,
) -> _Pass:
    state = _Pass()
    state.transport_snapshot = transport.snapshot()
    state.transport_estimator = transport.fork()
    if previous is not None:
        state.devices = dict(previous.devices)
        state.born = dict(previous.born)
        state.binding = dict(previous.binding)

    layer_of = layering.layer_of
    for layer in layering.layers:
        uids = set(layer.uids)
        ops = [assay[uid] for uid in layer.uids]
        in_edges = [
            (p, c) for p, c in assay.edges if p in uids and c in uids
        ]
        edge_transport = {e: transport.edge_time(*e) for e in in_edges}
        release = {
            uid: transport.release_time(uid, within=uids) for uid in layer.uids
        }

        if previous is not None:
            # Drop the layer's own previous devices unless another layer's
            # current binding still references them.
            referenced = {
                dev
                for op_uid, dev in state.binding.items()
                if layer_of[op_uid] != layer.index
            }
            droppable = [
                uid
                for uid, born in state.born.items()
                if born == layer.index and uid not in referenced
            ]
            for uid in droppable:
                del state.devices[uid]
                del state.born[uid]

        fixed_devices = list(state.devices.values())
        free_slots = max(0, spec.max_devices - len(fixed_devices))

        incoming = [
            (state.binding[p], c)
            for p, c in assay.edges
            if c in uids and p not in uids and p in state.binding
        ]
        outgoing = [
            (p, state.binding[c])
            for p, c in assay.edges
            if p in uids and c not in uids and c in state.binding
        ]
        existing_paths = _paths_excluding_layer(
            assay, state.binding, uids
        )

        problem = LayerProblem(
            layer_index=layer.index,
            ops=ops,
            in_layer_edges=in_edges,
            edge_transport=edge_transport,
            release=release,
            fixed_devices=fixed_devices,
            free_slots=free_slots,
            incoming=incoming,
            outgoing=outgoing,
            existing_paths=existing_paths,
        )
        warm_from = (
            previous.results.get(layer.index) if previous is not None else None
        )
        if warm_from is not None:
            warm_from = _rebase_warm_result(
                warm_from, fixed_devices, previous.devices
            )
        result = _solve_layer(
            problem, spec, allocate_uid, cache=cache, warm_from=warm_from
        )
        state.results[layer.index] = result
        for device in result.new_devices:
            state.devices[device.uid] = device
            state.born[device.uid] = layer.index
        state.binding.update(result.binding)

    # Prune devices nothing references anymore (e.g. replaced during
    # re-synthesis).
    used = set(state.binding.values())
    for uid in [u for u in state.devices if u not in used]:
        del state.devices[uid]
        del state.born[uid]
    return state


def _paths_excluding_layer(
    assay: Assay, binding: dict[str, str], layer_uids: set[str]
) -> set[tuple[str, str]]:
    """Paths already implied by edges not touching the current layer."""
    paths: set[tuple[str, str]] = set()
    for parent, child in assay.edges:
        if parent in layer_uids or child in layer_uids:
            continue
        if parent in binding and child in binding:
            a, b = binding[parent], binding[child]
            if a != b:
                paths.add(path_key(a, b))
    return paths


def layer_cost(
    result: LayerSolveResult, problem: LayerProblem, spec: SynthesisSpec
) -> float:
    """Evaluate a decoded layer result under the layer ILP's objective.

    Used to compare the ILP incumbent against the greedy fallback on equal
    terms: weighted makespan + cost of newly integrated devices + newly
    created transportation paths.
    """
    costs = spec.cost_model
    weights = spec.weights
    area = sum(d.area(costs) for d in result.new_devices)
    processing = sum(d.processing_cost(costs) for d in result.new_devices)

    new_paths: set[tuple[str, str]] = set()

    def note(dev_a: str, dev_b: str) -> None:
        if dev_a != dev_b:
            pair = path_key(dev_a, dev_b)
            if pair not in problem.existing_paths:
                new_paths.add(pair)

    for parent, child in problem.in_layer_edges:
        note(result.binding[parent], result.binding[child])
    for parent_device, child in problem.incoming:
        note(parent_device, result.binding[child])
    for parent, child_device in problem.outgoing:
        note(result.binding[parent], child_device)

    return (
        weights.time * result.schedule.makespan
        + weights.area * area
        + weights.processing * processing
        + weights.paths * len(new_paths)
    )


def _rebase_warm_result(
    result: LayerSolveResult,
    fixed_devices: list[GeneralDevice],
    previous_devices: dict[str, GeneralDevice],
) -> LayerSolveResult | None:
    """Translate a previous pass's layer result onto the current device set.

    Earlier layers of the current pass may have replaced inherited devices
    with freshly-allocated ones, so the old binding can reference uids that
    no longer exist.  Stale references are remapped onto structurally
    identical current fixed devices (same container, capacity, accessories,
    signature); the result's own new devices are left alone because the
    start-vector encoder maps those onto free slots positionally.  Returns
    ``None`` when a stale device has no unclaimed structural twin, which
    means the earlier layers genuinely changed the device mix and the old
    solution cannot carry over.
    """
    fixed_uids = {d.uid for d in fixed_devices}
    own_uids = {d.uid for d in result.new_devices}
    stale = sorted(
        {
            uid
            for uid in result.binding.values()
            if uid not in fixed_uids and uid not in own_uids
        }
    )
    if not stale:
        return result

    def token(device: GeneralDevice):
        return (
            device.container,
            device.capacity,
            frozenset(device.accessories),
            device.signature,
        )

    taken = set(result.binding.values())
    pool: dict[tuple, list[str]] = {}
    for device in fixed_devices:
        if device.uid not in taken:
            pool.setdefault(token(device), []).append(device.uid)
    mapping: dict[str, str] = {}
    for uid in stale:
        old = previous_devices.get(uid)
        twins = pool.get(token(old)) if old is not None else None
        if not twins:
            return None
        mapping[uid] = twins.pop(0)

    binding = {
        op: mapping.get(dev, dev) for op, dev in result.binding.items()
    }
    schedule = LayerSchedule(index=result.schedule.index)
    for placement in result.schedule.placements.values():
        schedule.place(
            replace(
                placement,
                device_uid=mapping.get(
                    placement.device_uid, placement.device_uid
                ),
            )
        )
    return replace(result, binding=binding, schedule=schedule)


def _solve_layer(
    problem: LayerProblem,
    spec: SynthesisSpec,
    allocate_uid,
    cache: LayerSolveCache | None = None,
    warm_from: LayerSolveResult | None = None,
) -> LayerSolveResult:
    """Solve one layer: ILP, greedy, and previous-pass reuse race.

    The greedy list scheduler is cheap and always feasible, so it doubles
    as both a fallback (when the ILP finds no incumbent in time) and a
    quality floor (when the ILP's time-limited incumbent is poor).

    ``cache`` short-circuits the whole solve when an earlier pass already
    solved an identical problem.  ``warm_from`` (the previous pass's result
    for this layer) serves two roles: it seeds the ILP with an incumbent on
    backends that accept one (greedy is the backstop start), and — because
    the HiGHS wrapper cannot inject incumbents — it re-enters the race as a
    candidate whenever it is still feasible for the current problem, so a
    time-limited re-solve can never regress below what the previous pass
    already achieved.  That floor is also what lets re-synthesis converge:
    a reused solution keeps the binding stable, which keeps the transport
    estimates stable, which lets the next pass hit the cache.
    """
    if cache is not None:
        replayed = cache.lookup(problem, spec, allocate_uid)
        if replayed is not None:
            return replayed

    build_started = time.monotonic()
    greedy: LayerSolveResult | None = None
    if spec.allow_heuristic_fallback:
        try:
            greedy = schedule_layer_greedy(problem, spec, allocate_uid)
        except SchedulingError:
            greedy = None

    layer_model = build_layer_model(problem, spec)

    warm_values = None
    warm_start = None
    if spec.enable_warm_start:
        if warm_from is not None:
            warm_values = encode_layer_start(layer_model, warm_from)
        warm_start = warm_values
        if warm_start is None and greedy is not None:
            warm_start = encode_layer_start(layer_model, greedy)
    build_time = time.monotonic() - build_started

    def warm_candidate() -> LayerSolveResult | None:
        """The previous pass's solution, re-decoded for this problem."""
        if warm_values is None:
            return None
        reused = decode_layer_solution(
            layer_model,
            Solution(
                status=SolveStatus.FEASIBLE,
                objective=layer_model.model.objective.value(warm_values),
                values=warm_values,
                backend="reuse",
            ),
            allocate_uid,
        )
        reused.solver_status = "warm"
        return reused

    def finalize(
        result: LayerSolveResult, solution=None
    ) -> LayerSolveResult:
        base = solution.stats if solution is not None else None
        result.stats = SolveStats(
            layer=problem.layer_index,
            backend=base.backend if base else "heuristic",
            status=result.solver_status,
            nodes=base.nodes if base else 0,
            simplex_iterations=base.simplex_iterations if base else 0,
            build_time=build_time,
            solve_time=base.solve_time if base else 0.0,
            cache_hit=False,
            warm_started=base.warm_started if base else False,
        )
        if cache is not None:
            cache.store(problem, spec, result)
        return result

    try:
        solution = layer_model.model.solve(
            backend=spec.backend,
            time_limit=spec.time_limit,
            mip_gap=spec.mip_gap,
            warm_start=warm_start,
        )
    except SolverError:
        fallback = warm_candidate() or greedy
        if fallback is not None:
            return finalize(fallback)
        raise

    if solution.status.has_solution:
        ilp_result = decode_layer_solution(layer_model, solution, allocate_uid)
        if solution.status.name == "OPTIMAL":
            return finalize(ilp_result, solution)
        # Time-limited incumbent: race it against the previous pass's
        # solution and the greedy schedule.  Candidate order breaks cost
        # ties — reuse first, for binding stability across passes.
        candidates = [
            c for c in (warm_candidate(), ilp_result, greedy) if c is not None
        ]
        winner = min(
            candidates, key=lambda c: layer_cost(c, problem, spec)
        )
        return finalize(winner, solution)
    if solution.status.name == "INFEASIBLE":
        raise InfeasibleError(
            f"layer {problem.layer_index} is infeasible under |D|="
            f"{spec.max_devices}"
        )
    fallback = warm_candidate() or greedy
    if fallback is not None:
        return finalize(fallback, solution)
    raise SolverError(
        f"layer {problem.layer_index}: no solution within "
        f"{spec.time_limit}s and fallback disabled"
    )


def build_inventory(result: SynthesisResult) -> DeviceInventory:
    """Package a result's devices as a :class:`DeviceInventory` snapshot."""
    inventory = DeviceInventory(result.spec.max_devices)
    for layer in result.schedule.layers:
        for placement in layer.placements.values():
            uid = placement.device_uid
            if uid not in inventory:
                inventory.add(result.devices[uid], layer.index)
    return inventory
