"""Progressive re-synthesis driver (paper Sec. 3.2).

Synthesis runs in passes over the layer sequence:

* **initial pass** — layers are solved front to back; each layer inherits
  every device built so far (``D_i = D_{i-1} ∪ D'_i``) and pays only for the
  devices it newly integrates;
* **re-synthesis passes** — each layer ``L_i`` inherits ``D \\ D'_i``, the
  full device set of the previous pass minus the devices ``L_i`` itself
  introduced, so the configuration choices of *posterior* layers become
  visible (Fig. 6).  Between passes, transportation times are refined from
  the latest binding (Sec. 4.1).

Passes repeat while the relative makespan improvement exceeds
``spec.improvement_threshold`` (the paper's 10 % rule), up to
``spec.max_iterations``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..devices.device import GeneralDevice
from ..devices.inventory import DeviceInventory
from ..errors import InfeasibleError, SchedulingError, SolverError
from ..layering import LayeringResult, layer_assay
from ..operations.assay import Assay
from .decode import LayerSolveResult, decode_layer_solution
from .heuristic import schedule_layer_greedy
from .milp_model import LayerProblem, build_layer_model
from .schedule import HybridSchedule
from .spec import SynthesisSpec
from .transport import TransportEstimator, path_key
from .validate import validate_result


@dataclass
class IterationRecord:
    """Summary of one synthesis pass (Table 3 rows)."""

    index: int  # 0 = initial pass
    fixed_makespan: int
    num_devices: int
    num_paths: int
    layer_statuses: list[str]
    runtime: float

    @property
    def label(self) -> str:
        return "Initial" if self.index == 0 else f"{self.index}. Ite."


@dataclass
class SynthesisResult:
    """Complete synthesis output."""

    assay: Assay
    spec: SynthesisSpec
    layering: LayeringResult
    schedule: HybridSchedule
    devices: dict[str, GeneralDevice]
    paths: set[tuple[str, str]]
    history: list[IterationRecord] = field(default_factory=list)
    runtime: float = 0.0
    transport: TransportEstimator | None = None
    #: the per-edge transportation estimates the selected pass scheduled
    #: against (validation replays dependencies with exactly these).
    edge_transport: dict[tuple[str, str], int] = field(default_factory=dict)

    @property
    def fixed_makespan(self) -> int:
        return self.schedule.fixed_makespan

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def num_paths(self) -> int:
        return len(self.paths)

    @property
    def makespan_expression(self) -> str:
        return self.schedule.makespan_expression()

    def validate(self) -> None:
        validate_result(self)


class _Pass:
    """State of one synthesis pass over all layers."""

    def __init__(self) -> None:
        self.devices: dict[str, GeneralDevice] = {}
        self.born: dict[str, int] = {}
        self.results: dict[int, LayerSolveResult] = {}
        self.binding: dict[str, str] = {}
        #: per-edge transportation estimates this pass was built with.
        self.transport_snapshot: dict[tuple[str, str], int] = {}

    @property
    def fixed_makespan(self) -> int:
        return sum(r.schedule.makespan for r in self.results.values())

    def schedule(self) -> HybridSchedule:
        return HybridSchedule(
            layers=[self.results[i].schedule for i in sorted(self.results)]
        )

    def used_devices(self) -> dict[str, GeneralDevice]:
        used = set(self.binding.values())
        return {uid: dev for uid, dev in self.devices.items() if uid in used}


def synthesize(
    assay: Assay,
    spec: SynthesisSpec | None = None,
    transport: TransportEstimator | None = None,
) -> SynthesisResult:
    """Run the full component-oriented synthesis flow on ``assay``.

    ``transport`` overrides the transportation estimator — e.g. a
    :class:`repro.layout.LayoutTransportEstimator` that refines from an
    actual device placement instead of usage ranks.
    """
    spec = spec or SynthesisSpec()
    started = time.monotonic()

    layering = layer_assay(assay, spec.threshold)
    transport = transport or TransportEstimator(assay, spec)
    uid_counter = [0]

    def allocate_uid() -> str:
        uid = f"d{uid_counter[0]}"
        uid_counter[0] += 1
        return uid

    history: list[IterationRecord] = []

    current = _run_pass(
        assay, layering, spec, transport, allocate_uid, previous=None
    )
    history.append(_record(0, assay, current, started))
    best = current

    for iteration in range(1, spec.max_iterations + 1):
        previous_makespan = current.fixed_makespan
        transport.refine(current.binding)
        candidate = _run_pass(
            assay, layering, spec, transport, allocate_uid, previous=current
        )
        history.append(_record(iteration, assay, candidate, started))
        if candidate.fixed_makespan <= best.fixed_makespan:
            best = candidate
        improvement = (
            (previous_makespan - candidate.fixed_makespan) / previous_makespan
            if previous_makespan
            else 0.0
        )
        current = candidate
        if improvement <= spec.improvement_threshold:
            break

    schedule = best.schedule()
    paths = schedule.transportation_paths(assay.edges)
    result = SynthesisResult(
        assay=assay,
        spec=spec,
        layering=layering,
        schedule=schedule,
        devices=best.used_devices(),
        paths=paths,
        history=history,
        runtime=time.monotonic() - started,
        transport=transport,
        edge_transport=dict(best.transport_snapshot),
    )
    result.validate()
    return result


def _record(
    index: int, assay: Assay, state: _Pass, started: float
) -> IterationRecord:
    schedule = state.schedule()
    return IterationRecord(
        index=index,
        fixed_makespan=state.fixed_makespan,
        num_devices=len(state.used_devices()),
        num_paths=len(schedule.transportation_paths(assay.edges)),
        layer_statuses=[
            state.results[i].solver_status for i in sorted(state.results)
        ],
        runtime=time.monotonic() - started,
    )


def _run_pass(
    assay: Assay,
    layering: LayeringResult,
    spec: SynthesisSpec,
    transport: TransportEstimator,
    allocate_uid,
    previous: _Pass | None,
) -> _Pass:
    state = _Pass()
    state.transport_snapshot = transport.snapshot()
    if previous is not None:
        state.devices = dict(previous.devices)
        state.born = dict(previous.born)
        state.binding = dict(previous.binding)

    layer_of = layering.layer_of
    for layer in layering.layers:
        uids = set(layer.uids)
        ops = [assay[uid] for uid in layer.uids]
        in_edges = [
            (p, c) for p, c in assay.edges if p in uids and c in uids
        ]
        edge_transport = {e: transport.edge_time(*e) for e in in_edges}
        release = {
            uid: transport.release_time(uid, within=uids) for uid in layer.uids
        }

        if previous is not None:
            # Drop the layer's own previous devices unless another layer's
            # current binding still references them.
            referenced = {
                dev
                for op_uid, dev in state.binding.items()
                if layer_of[op_uid] != layer.index
            }
            droppable = [
                uid
                for uid, born in state.born.items()
                if born == layer.index and uid not in referenced
            ]
            for uid in droppable:
                del state.devices[uid]
                del state.born[uid]

        fixed_devices = list(state.devices.values())
        free_slots = max(0, spec.max_devices - len(fixed_devices))

        incoming = [
            (state.binding[p], c)
            for p, c in assay.edges
            if c in uids and p not in uids and p in state.binding
        ]
        outgoing = [
            (p, state.binding[c])
            for p, c in assay.edges
            if p in uids and c not in uids and c in state.binding
        ]
        existing_paths = _paths_excluding_layer(
            assay, state.binding, uids
        )

        problem = LayerProblem(
            layer_index=layer.index,
            ops=ops,
            in_layer_edges=in_edges,
            edge_transport=edge_transport,
            release=release,
            fixed_devices=fixed_devices,
            free_slots=free_slots,
            incoming=incoming,
            outgoing=outgoing,
            existing_paths=existing_paths,
        )
        result = _solve_layer(problem, spec, allocate_uid)
        state.results[layer.index] = result
        for device in result.new_devices:
            state.devices[device.uid] = device
            state.born[device.uid] = layer.index
        state.binding.update(result.binding)

    # Prune devices nothing references anymore (e.g. replaced during
    # re-synthesis).
    used = set(state.binding.values())
    for uid in [u for u in state.devices if u not in used]:
        del state.devices[uid]
        del state.born[uid]
    return state


def _paths_excluding_layer(
    assay: Assay, binding: dict[str, str], layer_uids: set[str]
) -> set[tuple[str, str]]:
    """Paths already implied by edges not touching the current layer."""
    paths: set[tuple[str, str]] = set()
    for parent, child in assay.edges:
        if parent in layer_uids or child in layer_uids:
            continue
        if parent in binding and child in binding:
            a, b = binding[parent], binding[child]
            if a != b:
                paths.add(path_key(a, b))
    return paths


def layer_cost(
    result: LayerSolveResult, problem: LayerProblem, spec: SynthesisSpec
) -> float:
    """Evaluate a decoded layer result under the layer ILP's objective.

    Used to compare the ILP incumbent against the greedy fallback on equal
    terms: weighted makespan + cost of newly integrated devices + newly
    created transportation paths.
    """
    costs = spec.cost_model
    weights = spec.weights
    area = sum(d.area(costs) for d in result.new_devices)
    processing = sum(d.processing_cost(costs) for d in result.new_devices)

    new_paths: set[tuple[str, str]] = set()

    def note(dev_a: str, dev_b: str) -> None:
        if dev_a != dev_b:
            pair = path_key(dev_a, dev_b)
            if pair not in problem.existing_paths:
                new_paths.add(pair)

    for parent, child in problem.in_layer_edges:
        note(result.binding[parent], result.binding[child])
    for parent_device, child in problem.incoming:
        note(parent_device, result.binding[child])
    for parent, child_device in problem.outgoing:
        note(result.binding[parent], child_device)

    return (
        weights.time * result.schedule.makespan
        + weights.area * area
        + weights.processing * processing
        + weights.paths * len(new_paths)
    )


def _solve_layer(
    problem: LayerProblem, spec: SynthesisSpec, allocate_uid
) -> LayerSolveResult:
    """Solve one layer: ILP and greedy race; the better objective wins.

    The greedy list scheduler is cheap and always feasible, so it doubles
    as both a fallback (when the ILP finds no incumbent in time) and a
    quality floor (when the ILP's time-limited incumbent is poor).
    """
    greedy: LayerSolveResult | None = None
    if spec.allow_heuristic_fallback:
        try:
            greedy = schedule_layer_greedy(problem, spec, allocate_uid)
        except SchedulingError:
            greedy = None

    layer_model = build_layer_model(problem, spec)
    try:
        solution = layer_model.model.solve(
            backend=spec.backend,
            time_limit=spec.time_limit,
            mip_gap=spec.mip_gap,
        )
    except SolverError:
        if greedy is not None:
            return greedy
        raise

    if solution.status.has_solution:
        ilp_result = decode_layer_solution(layer_model, solution, allocate_uid)
        if greedy is not None and solution.status.name != "OPTIMAL":
            if layer_cost(greedy, problem, spec) < layer_cost(
                ilp_result, problem, spec
            ):
                return greedy
        return ilp_result
    if solution.status.name == "INFEASIBLE":
        raise InfeasibleError(
            f"layer {problem.layer_index} is infeasible under |D|="
            f"{spec.max_devices}"
        )
    if greedy is not None:
        return greedy
    raise SolverError(
        f"layer {problem.layer_index}: no solution within "
        f"{spec.time_limit}s and fallback disabled"
    )


def build_inventory(result: SynthesisResult) -> DeviceInventory:
    """Package a result's devices as a :class:`DeviceInventory` snapshot."""
    inventory = DeviceInventory(result.spec.max_devices)
    for layer in result.schedule.layers:
        for placement in layer.placements.values():
            uid = placement.device_uid
            if uid not in inventory:
                inventory.add(result.devices[uid], layer.index)
    return inventory
