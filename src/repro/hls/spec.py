"""Synthesis specification: everything the user chooses.

Mirrors the paper's user-supplied inputs: the device cap ``|D|``, the
indeterminate threshold ``t``, the objective weight coefficients
``C_t/C_a/C_pr/C_p``, the initial transportation constant, and the
arithmetic progression of potential transportation times (Sec. 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..components.accessories import AccessoryRegistry, standard_registry
from ..components.costs import CostModel, default_cost_model
from ..devices.device import BindingMode
from ..errors import SpecificationError


@dataclass(frozen=True)
class Weights:
    """Objective weight coefficients (paper Sec. 4.3).

    Defaults make execution time dominant, with transportation paths a
    strong secondary criterion — matching the paper's reported trade-offs
    (time is the headline column of Table 2, and paths are explicitly
    minimized "to save routing efforts"; a weak path weight lets
    time-optimal solutions scatter operations over many inter-device
    channels, which also destabilizes the transport refinement between
    re-synthesis passes).
    """

    time: float = 50.0
    area: float = 1.0
    processing: float = 1.0
    paths: float = 25.0

    def __post_init__(self) -> None:
        for name in ("time", "area", "processing", "paths"):
            if getattr(self, name) < 0:
                raise SpecificationError(f"weight {name} must be >= 0")
        if self.time == 0:
            raise SpecificationError("time weight must be positive")


@dataclass(frozen=True)
class TransportProgression:
    """The user-defined arithmetic progression of transportation times.

    The paper asks the user for the minimum and maximum term and the number
    of terms; path-usage ranks map onto the terms (most-used path gets the
    minimum term, Sec. 4.1).
    """

    minimum: int = 1
    maximum: int = 5
    terms: int = 5

    def __post_init__(self) -> None:
        if self.terms < 1:
            raise SpecificationError("progression needs at least one term")
        if self.minimum < 0 or self.maximum < self.minimum:
            raise SpecificationError(
                f"invalid progression range [{self.minimum}, {self.maximum}]"
            )

    def term_values(self) -> list[int]:
        """The progression's terms, ascending, as integers."""
        if self.terms == 1:
            return [self.minimum]
        step = (self.maximum - self.minimum) / (self.terms - 1)
        return [round(self.minimum + k * step) for k in range(self.terms)]

    def term_for_rank(self, rank: int) -> int:
        """Transportation time for the path with usage rank ``rank``.

        Rank 0 is the most-used path (shortest channel → minimum term);
        ranks beyond the progression clamp to the maximum term.
        """
        values = self.term_values()
        return values[min(rank, len(values) - 1)]


#: storage synthesis modes: ``off`` reproduces the storage-oblivious
#: paper flow byte-for-byte; ``reservoir`` buffers layer-crossing
#: reagents in dedicated storage reservoirs only; ``channel`` parks them
#: in transport channels (reservoir fallback when the channel is taken);
#: ``auto`` picks the cheapest of hold-in-place / channel / reservoir
#: per reagent.
STORAGE_MODES = ("off", "reservoir", "channel", "auto")

#: device-conflict encoding modes: ``eager`` emits every disjunction row
#: of paper (10)-(13) up front (the reference encoding); ``lazy`` starts
#: without them and separates only the violated conflict groups during the
#: solve loop (see hls/milp_model.py).  Both converge to conflict-free
#: schedules; within the MIP-gap tolerance the solver may return different
#: (equally valid) optima, so the mode participates in solve fingerprints.
CONFLICT_MODES = ("eager", "lazy")

#: throughput modes (extension, see :mod:`repro.periodic`): ``off`` keeps
#: the one-shot paper flow byte-identical; ``periodic`` additionally
#: computes a steady-state modulo schedule that pipelines back-to-back
#: runs of the assay, minimizing the initiation interval (II).
THROUGHPUT_MODES = ("off", "periodic")

#: periodic scheduler backends (see repro/periodic/scheduler.py): ``ilp``
#: probes each candidate II with a modulo ILP over the ``ilp/`` model
#: layer, ``greedy`` uses the modulo list scheduler, ``auto`` prefers the
#: ILP and degrades to greedy when no MIP backend is usable or a probe
#: exhausts its budget.
PERIODIC_SCHEDULERS = ("auto", "ilp", "greedy")


@dataclass(frozen=True)
class StorageWeights:
    """Per-boundary storage cost weights (extension, after the
    "Transport or Store?" / "Storage and Caching" line of work).

    Each layer-crossing reagent is charged its weight once per layer
    boundary it crosses: ``hold`` for occupying its producer's device,
    ``channel`` for parking in a transport channel, ``reservoir`` for a
    slot in a dedicated storage reservoir.  Defaults order the options
    hold < channel < reservoir, matching the physical intuition that
    reusing existing structure is cheaper than dedicating new area.
    """

    hold: float = 1.0
    channel: float = 2.0
    reservoir: float = 4.0

    def __post_init__(self) -> None:
        for name in ("hold", "channel", "reservoir"):
            if getattr(self, name) < 0:
                raise SpecificationError(f"storage weight {name} must be >= 0")


@dataclass
class SynthesisSpec:
    """All knobs of a synthesis run."""

    #: cardinality of the device set D (maximal devices on the chip).
    max_devices: int = 25
    #: threshold ``t``: maximal indeterminate operations per layer.
    threshold: int = 10
    weights: Weights = field(default_factory=Weights)
    #: initial constant transportation time assigned to every operation.
    transport_default: int = 3
    transport_progression: TransportProgression = field(
        default_factory=TransportProgression
    )
    binding_mode: BindingMode = BindingMode.COVER
    cost_model: CostModel = field(default_factory=default_cost_model)
    registry: AccessoryRegistry = field(default_factory=standard_registry)
    #: ILP backend name ("auto", "highs", "bnb").
    backend: str = "auto"
    #: wall-clock budget per layer solve, seconds.
    time_limit: float = 20.0
    mip_gap: float | None = 1e-4
    #: continue re-synthesis while relative improvement exceeds this
    #: (paper: "if the improvement ... is larger than 10%, we will run
    #: another iteration").  A negative value means "iterate until the
    #: binding stops changing": passes continue through zero-improvement
    #: iterations until every layer replays from the solve cache (full
    #: convergence) or ``max_iterations`` is exhausted.
    improvement_threshold: float = 0.10
    #: hard cap on re-synthesis iterations (initial pass not counted).
    max_iterations: int = 4
    #: fall back to the greedy list scheduler when the ILP finds no
    #: incumbent within the time limit.
    allow_heuristic_fallback: bool = True
    #: memoize per-layer solves across re-synthesis passes: a layer whose
    #: inputs are unchanged replays the previous decoded result instead of
    #: rebuilding and re-solving its ILP.
    enable_solve_cache: bool = True
    #: LRU bound on the layer-solve cache (entries).  ``None`` = unbounded;
    #: long-lived processes (the synthesis service, campaign workers with
    #: contingency re-synthesis) should keep a bound so the cache cannot
    #: grow into a leak.
    solve_cache_capacity: int | None = 1024
    #: seed each layer ILP with an incumbent (previous pass's result, or
    #: the greedy fallback) on backends that support warm starts.
    enable_warm_start: bool = True
    #: add an objective cutoff row (``c.x <= c.warm``) from the validated
    #: warm start before each layer solve.  The warm point is feasible, so
    #: the true optimum survives the cut and any incumbent still lands
    #: within ``mip_gap`` of it — but the search path (and hence the
    #: within-gap tie-breaking) changes, so the flag participates in solve
    #: fingerprints.  This is the HiGHS-side analogue of the pure-Python
    #: solver's incumbent carry: SciPy's ``milp`` cannot inject a start
    #: vector, but it can be told not to search above one.
    warm_cutoff: bool = False
    #: scheduler backend for per-layer solves ("portfolio" races the ILP
    #: against warm-start reuse and the greedy list scheduler; "ilp-highs",
    #: "ilp-bnb", and "greedy" pin a single strategy).
    scheduler: str = "portfolio"
    #: worker processes for re-synthesis layer solves (1 = sequential;
    #: results are identical for any value — see hls/parallel.py).
    jobs: int = 1
    #: device-conflict encoding (see :data:`CONFLICT_MODES`): ``eager``
    #: emits all disjunction rows up front; ``lazy`` separates violated
    #: conflict groups on demand inside the solve loop.
    conflict_mode: str = "eager"
    #: keep per-layer solver sessions alive across re-synthesis passes and
    #: mutate them with deltas instead of re-encoding from scratch.
    #: Results are byte-identical either way (sessions rebuild the same
    #: standard form); disable to force from-scratch encoding for A/B.
    enable_solver_sessions: bool = True
    #: storage synthesis mode (see :data:`STORAGE_MODES`).  ``off`` keeps
    #: every code path byte-identical to the storage-oblivious flow.
    storage_mode: str = "off"
    #: reagent slots per dedicated storage reservoir.
    storage_capacity: int = 4
    storage_weights: StorageWeights = field(default_factory=StorageWeights)
    #: throughput mode (see :data:`THROUGHPUT_MODES`).  ``off`` keeps every
    #: code path byte-identical to the one-shot flow; ``periodic``
    #: additionally derives a steady-state pipelined schedule.
    throughput_mode: str = "off"
    #: desired initiation interval: the periodic search stops improving
    #: once it certifies an II at or below this (``None`` = minimize).
    target_ii: int | None = None
    #: periodic scheduler backend (see :data:`PERIODIC_SCHEDULERS`).
    throughput_scheduler: str = "auto"
    #: multi-variant sharing ablation: each fraction ``f`` in (0, 1]
    #: derives a dependency-closed topological-prefix variant containing
    #: the first ``ceil(f * n)`` operations of the assay; a non-empty
    #: tuple makes periodic throughput jobs also report per-variant IIs
    #: under one shared binding versus independent synthesis.
    throughput_variants: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.max_devices < 1:
            raise SpecificationError("max_devices must be >= 1")
        if self.threshold < 1:
            raise SpecificationError("threshold must be >= 1")
        if self.transport_default < 0:
            raise SpecificationError("transport_default must be >= 0")
        if self.time_limit <= 0:
            raise SpecificationError("time_limit must be positive")
        if not -1 <= self.improvement_threshold < 1:
            raise SpecificationError(
                "improvement_threshold must be in [-1, 1) "
                "(negative: iterate to convergence)"
            )
        if self.max_iterations < 0:
            raise SpecificationError("max_iterations must be >= 0")
        if self.jobs < 1:
            raise SpecificationError("jobs must be >= 1")
        if self.solve_cache_capacity is not None and self.solve_cache_capacity < 1:
            raise SpecificationError(
                "solve_cache_capacity must be >= 1 (or None for unbounded)"
            )
        if self.conflict_mode not in CONFLICT_MODES:
            choices = "|".join(CONFLICT_MODES)
            raise SpecificationError(
                f"unknown conflict_mode {self.conflict_mode!r} (choices: {choices})"
            )
        if self.storage_mode not in STORAGE_MODES:
            choices = "|".join(STORAGE_MODES)
            raise SpecificationError(
                f"unknown storage_mode {self.storage_mode!r} (choices: {choices})"
            )
        if self.storage_capacity < 1:
            raise SpecificationError("storage_capacity must be >= 1")
        if self.throughput_mode not in THROUGHPUT_MODES:
            choices = "|".join(THROUGHPUT_MODES)
            raise SpecificationError(
                f"unknown throughput_mode {self.throughput_mode!r} "
                f"(choices: {choices})"
            )
        if self.target_ii is not None and self.target_ii < 1:
            raise SpecificationError("target_ii must be >= 1 (or None)")
        if self.throughput_scheduler not in PERIODIC_SCHEDULERS:
            choices = "|".join(PERIODIC_SCHEDULERS)
            raise SpecificationError(
                f"unknown throughput_scheduler "
                f"{self.throughput_scheduler!r} (choices: {choices})"
            )
        if not isinstance(self.throughput_variants, tuple):
            self.throughput_variants = tuple(self.throughput_variants)
        for fraction in self.throughput_variants:
            if not 0 < fraction <= 1:
                raise SpecificationError(
                    f"throughput variant fraction {fraction!r} must be "
                    f"in (0, 1]"
                )
        from .backends import available_schedulers

        if self.scheduler not in available_schedulers():
            choices = ", ".join(available_schedulers())
            raise SpecificationError(
                f"unknown scheduler {self.scheduler!r} (choices: {choices})"
            )

    def storage_pressure_weight(self) -> float:
        """Per-boundary pressure charged in layer objectives when a
        crossing edge binds its endpoints apart.

        A linear proxy for the eventual plan cost: the reservoir weight
        when reservoirs are the only buffer, else the (cheaper) channel
        weight.  Zero disables storage pressure entirely.
        """
        if self.storage_mode == "off":
            return 0.0
        if self.storage_mode == "reservoir":
            return self.storage_weights.reservoir
        return min(self.storage_weights.channel, self.storage_weights.reservoir)
