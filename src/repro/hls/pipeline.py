"""Compiler-style pass pipeline for progressive re-synthesis (Sec. 3.2).

The old 650-line ``synthesizer.py`` interleaved layering, the pass loop,
per-layer problem construction, solving, convergence checks, and
validation in one function.  This module sequences them as explicit
stages over a :class:`~repro.hls.context.SynthesisContext`:

    LayeringStage
      → PassLoop( TransportRefineStage
                  → LayerSolveStage per layer
                  → StoragePlanStage
                  → ConvergenceStage )
      → ValidateStage

Synthesis semantics are unchanged: the initial pass solves layers front to
back with forward device inheritance (``D_i = D_{i-1} ∪ D'_i``), every
re-synthesis pass gives layer ``L_i`` the previous pass's device set
``D \\ D'_i`` (Fig. 6), transportation times are refined between passes
(Sec. 4.1), and iteration stops on the paper's improvement rule or on
full solve-cache convergence.  What changed is that each piece is now a
replaceable object — which is how ``hls/parallel.py`` slots speculative
worker-process solves into re-synthesis passes without touching the loop.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import TYPE_CHECKING, Callable

from ..devices.device import GeneralDevice
from ..layering import LayeringResult, layer_assay
from ..operations.assay import Assay
from .backends import create_scheduler
from .cache import LayerSolveCache
from .context import PassState, SynthesisContext, beats
from .decode import LayerSolveResult
from .milp_model import LayerProblem
from .schedule import LayerSchedule
from .spec import SynthesisSpec
from .transport import TransportEstimator, path_key

if TYPE_CHECKING:
    from .parallel import PassSpeculator
    from .session import SessionPool
    from .synthesizer import SynthesisResult


# ---------------------------------------------------------------------------
# Layer-problem construction (shared by the real pass and the speculative
# simulation in hls/parallel.py — both must derive *identical* problems).
# ---------------------------------------------------------------------------


def prepare_layer_problem(
    assay: Assay,
    layering: LayeringResult,
    spec: SynthesisSpec,
    transport: TransportEstimator,
    state: PassState,
    layer,
    resynthesis: bool,
) -> LayerProblem:
    """Build layer ``layer``'s solve problem from the evolving pass state.

    On re-synthesis passes this also *mutates* ``state``: the layer's own
    previously-born devices are dropped (unless another layer's current
    binding still references them), realizing the paper's ``D \\ D'_i``
    inheritance.
    """
    uids = set(layer.uids)
    ops = [assay[uid] for uid in layer.uids]
    in_edges = [(p, c) for p, c in assay.edges if p in uids and c in uids]
    edge_transport = {e: transport.edge_time(*e) for e in in_edges}
    release = {
        uid: transport.release_time(uid, within=uids) for uid in layer.uids
    }

    if resynthesis:
        layer_of = layering.layer_of
        referenced = {
            dev
            for op_uid, dev in state.binding.items()
            if layer_of[op_uid] != layer.index
        }
        droppable = [
            uid
            for uid, born in state.born.items()
            if born == layer.index and uid not in referenced
        ]
        for uid in droppable:
            del state.devices[uid]
            del state.born[uid]

    fixed_devices = list(state.devices.values())
    free_slots = max(0, spec.max_devices - len(fixed_devices))

    incoming = [
        (state.binding[p], c)
        for p, c in assay.edges
        if c in uids and p not in uids and p in state.binding
    ]
    outgoing = [
        (p, state.binding[c])
        for p, c in assay.edges
        if p in uids and c not in uids and c in state.binding
    ]
    existing_paths = paths_excluding_layer(assay, state.binding, uids)

    # Storage pressure (extension): each cross-layer edge whose endpoints
    # bind apart will have to buffer its reagent once per spanned layer
    # boundary; charge that as a linear objective bias so layer solves
    # prefer co-locating long-lived intermediates.  Empty in off mode,
    # keeping every downstream code path byte-identical to the paper flow.
    storage_in: dict[tuple[str, str], float] = {}
    storage_out: dict[tuple[str, str], float] = {}
    pressure = spec.storage_pressure_weight()
    if pressure > 0:
        layer_of = layering.layer_of
        for p, c in assay.edges:
            if c in uids and p not in uids and p in state.binding:
                span = layer.index - layer_of[p]
                key = (state.binding[p], c)
                storage_in[key] = storage_in.get(key, 0.0) + pressure * span
            elif p in uids and c not in uids and c in state.binding:
                span = layer_of[c] - layer.index
                key = (p, state.binding[c])
                storage_out[key] = storage_out.get(key, 0.0) + pressure * span

    return LayerProblem(
        layer_index=layer.index,
        ops=ops,
        in_layer_edges=in_edges,
        edge_transport=edge_transport,
        release=release,
        fixed_devices=fixed_devices,
        free_slots=free_slots,
        incoming=incoming,
        outgoing=outgoing,
        existing_paths=existing_paths,
        storage_in=storage_in,
        storage_out=storage_out,
    )


def apply_layer_result(
    state: PassState, layer_index: int, result: LayerSolveResult
) -> None:
    """Fold one layer's solve into the pass state."""
    state.results[layer_index] = result
    for device in result.new_devices:
        state.devices[device.uid] = device
        state.born[device.uid] = layer_index
    state.binding.update(result.binding)


def paths_excluding_layer(
    assay: Assay, binding: dict[str, str], layer_uids: set[str]
) -> set[tuple[str, str]]:
    """Paths already implied by edges not touching the current layer."""
    paths: set[tuple[str, str]] = set()
    for parent, child in assay.edges:
        if parent in layer_uids or child in layer_uids:
            continue
        if parent in binding and child in binding:
            a, b = binding[parent], binding[child]
            if a != b:
                paths.add(path_key(a, b))
    return paths


def rebase_warm_result(
    result: LayerSolveResult,
    fixed_devices: list[GeneralDevice],
    previous_devices: dict[str, GeneralDevice],
) -> LayerSolveResult | None:
    """Translate a previous pass's layer result onto the current device set.

    Earlier layers of the current pass may have replaced inherited devices
    with freshly-allocated ones, so the old binding can reference uids that
    no longer exist.  Stale references are remapped onto structurally
    identical current fixed devices (same container, capacity, accessories,
    signature); the result's own new devices are left alone because the
    start-vector encoder maps those onto free slots positionally.  Returns
    ``None`` when a stale device has no unclaimed structural twin, which
    means the earlier layers genuinely changed the device mix and the old
    solution cannot carry over.
    """
    fixed_uids = {d.uid for d in fixed_devices}
    own_uids = {d.uid for d in result.new_devices}
    stale = sorted(
        {
            uid
            for uid in result.binding.values()
            if uid not in fixed_uids and uid not in own_uids
        }
    )
    if not stale:
        return result

    def token(device: GeneralDevice):
        return (
            device.container,
            device.capacity,
            frozenset(device.accessories),
            device.signature,
        )

    taken = set(result.binding.values())
    pool: dict[tuple, list[str]] = {}
    for device in fixed_devices:
        if device.uid not in taken:
            pool.setdefault(token(device), []).append(device.uid)
    mapping: dict[str, str] = {}
    for uid in stale:
        old = previous_devices.get(uid)
        twins = pool.get(token(old)) if old is not None else None
        if not twins:
            return None
        mapping[uid] = twins.pop(0)

    binding = {
        op: mapping.get(dev, dev) for op, dev in result.binding.items()
    }
    schedule = LayerSchedule(index=result.schedule.index)
    for placement in result.schedule.placements.values():
        schedule.place(
            replace(
                placement,
                device_uid=mapping.get(
                    placement.device_uid, placement.device_uid
                ),
            )
        )
    return replace(result, binding=binding, schedule=schedule)


# ---------------------------------------------------------------------------
# Stages
# ---------------------------------------------------------------------------


class LayeringStage:
    """Split the assay into layers of at most ``t`` indeterminate ops."""

    name = "layering"

    def run(self, context: SynthesisContext) -> None:
        context.layering = layer_assay(context.assay, context.spec.threshold)


class TransportRefineStage:
    """Refine transportation estimates from the latest binding (Sec. 4.1)."""

    name = "transport_refine"

    def run(self, context: SynthesisContext) -> None:
        context.transport.refine(context.current.binding)


class LayerSolveStage:
    """Solve one layer: cache replay → adopted speculative solve → backend.

    The scheduler backend is chosen by ``spec.scheduler`` (see
    ``hls/backends.py``).  When a :class:`~repro.hls.parallel.PassSpeculator`
    is attached, a worker-process solve is adopted only if the layer's
    actual problem matches the speculated one byte for byte (strict
    fingerprint); otherwise this stage solves inline, exactly like the
    sequential driver.
    """

    name = "layer_solve"

    def solve(
        self,
        problem: LayerProblem,
        spec: SynthesisSpec,
        allocate_uid: Callable[[], str],
        cache: LayerSolveCache | None = None,
        warm_from: LayerSolveResult | None = None,
        speculator: "PassSpeculator | None" = None,
        sessions: "SessionPool | None" = None,
    ) -> LayerSolveResult:
        if cache is not None:
            replayed = cache.lookup(problem, spec, allocate_uid)
            if replayed is not None:
                return replayed
        result = None
        if speculator is not None:
            result = speculator.take(problem, allocate_uid)
        if result is None:
            backend = create_scheduler(spec.scheduler)
            result = backend.solve(
                problem, spec, allocate_uid, warm_from, sessions=sessions
            )
        if cache is not None:
            cache.store(problem, spec, result)
        return result


class StoragePlanStage:
    """Synthesize the storage plan of a scheduled pass (extension).

    Runs between layer solving and the next transport refinement: every
    layer-crossing reagent gets a hold / channel / reservoir decision
    (see :mod:`repro.storage`).  A no-op returning ``None`` when
    ``storage_mode`` is ``off``.
    """

    name = "storage_plan"

    def run(self, context: SynthesisContext, state: PassState):
        if context.spec.storage_mode == "off":
            return None
        from ..storage import plan_storage

        return plan_storage(
            context.assay, context.layering, state.schedule(), context.spec
        )


class ConvergenceStage:
    """The paper's iteration rule plus full-cache-convergence early stop."""

    name = "convergence"

    def should_stop(
        self,
        context: SynthesisContext,
        previous_makespan: int,
        candidate: PassState,
    ) -> bool:
        improvement = (
            (previous_makespan - candidate.fixed_makespan) / previous_makespan
            if previous_makespan
            else 0.0
        )
        if improvement <= context.spec.improvement_threshold:
            return True
        # Every layer replayed an earlier solve: the loop has converged.
        return candidate.all_cache_hits


class PassLoop:
    """Initial pass + re-synthesis iterations over the layer sequence."""

    name = "pass_loop"

    def __init__(self, layer_solve: LayerSolveStage | None = None) -> None:
        self.layer_solve = layer_solve or LayerSolveStage()
        self.transport_refine = TransportRefineStage()
        self.storage_plan = StoragePlanStage()
        self.convergence = ConvergenceStage()

    def run(self, context: SynthesisContext) -> None:
        speculator = self._make_speculator(context)
        try:
            current = self.run_pass(context, previous=None)
            context.history.append(self._record(context, 0, current))
            best = current

            for iteration in range(1, context.spec.max_iterations + 1):
                previous_makespan = current.fixed_makespan
                refine_started = time.monotonic()
                self.transport_refine.run(
                    self._with_current(context, current)
                )
                refine_time = time.monotonic() - refine_started
                if speculator is not None:
                    speculator.begin_pass(current, context.uids)
                try:
                    candidate = self.run_pass(
                        context, previous=current, speculator=speculator
                    )
                finally:
                    if speculator is not None:
                        speculator.end_pass()
                record = self._record(context, iteration, candidate)
                record.stage_timings[self.transport_refine.name] = refine_time
                context.history.append(record)
                if beats(candidate, best, context.assay, context.spec):
                    best = candidate
                stop = self.convergence.should_stop(
                    context, previous_makespan, candidate
                )
                current = candidate
                if stop:
                    break
        finally:
            if speculator is not None:
                speculator.close()

        context.current = current
        context.best = best

    def _make_speculator(self, context: SynthesisContext):
        if context.jobs <= 1 or context.spec.max_iterations < 1:
            return None
        from .parallel import PassSpeculator

        return PassSpeculator(
            assay=context.assay,
            layering=context.layering,
            spec=context.spec,
            transport=context.transport,
            cache=context.cache,
            jobs=context.jobs,
        )

    @staticmethod
    def _with_current(
        context: SynthesisContext, current: PassState
    ) -> SynthesisContext:
        context.current = current
        return context

    def run_pass(
        self,
        context: SynthesisContext,
        previous: PassState | None,
        speculator: "PassSpeculator | None" = None,
    ) -> PassState:
        """One pass over all layers; records per-stage wall time."""
        assay = context.assay
        spec = context.spec
        timings = {"prepare": 0.0, "solve": 0.0, "apply": 0.0}

        state = PassState()
        state.transport_snapshot = context.transport.snapshot()
        state.transport_estimator = context.transport.fork()
        if previous is not None:
            state.devices = dict(previous.devices)
            state.born = dict(previous.born)
            state.binding = dict(previous.binding)

        for layer in context.layering.layers:
            stamp = time.monotonic()
            problem = prepare_layer_problem(
                assay,
                context.layering,
                spec,
                context.transport,
                state,
                layer,
                resynthesis=previous is not None,
            )
            warm_from = (
                previous.results.get(layer.index)
                if previous is not None
                else None
            )
            if warm_from is not None:
                warm_from = rebase_warm_result(
                    warm_from, problem.fixed_devices, previous.devices
                )
            timings["prepare"] += time.monotonic() - stamp

            stamp = time.monotonic()
            result = self.layer_solve.solve(
                problem,
                spec,
                context.uids,
                cache=context.cache,
                warm_from=warm_from,
                speculator=speculator,
                sessions=context.sessions,
            )
            timings["solve"] += time.monotonic() - stamp

            stamp = time.monotonic()
            apply_layer_result(state, layer.index, result)
            if speculator is not None:
                speculator.observe(layer.index, result, state, context.uids)
            timings["apply"] += time.monotonic() - stamp

        # Prune devices nothing references anymore (e.g. replaced during
        # re-synthesis).
        used = set(state.binding.values())
        for uid in [u for u in state.devices if u not in used]:
            del state.devices[uid]
            del state.born[uid]
        self._last_timings = timings
        return state

    def _record(
        self, context: SynthesisContext, index: int, state: PassState
    ) -> "IterationRecord":
        from .synthesizer import IterationRecord

        schedule = state.schedule()
        plan = self.storage_plan.run(context, state)
        return IterationRecord(
            index=index,
            fixed_makespan=state.fixed_makespan,
            num_devices=len(state.used_devices()),
            num_paths=len(
                schedule.transportation_paths(context.assay.edges)
            ),
            storage_demand=None if plan is None else plan.demand,
            storage_cost=None if plan is None else plan.total_cost,
            layer_statuses=[
                state.results[i].solver_status for i in sorted(state.results)
            ],
            runtime=time.monotonic() - context.started,
            layer_stats=[
                state.results[i].stats
                for i in sorted(state.results)
                if state.results[i].stats is not None
            ],
            stage_timings=dict(getattr(self, "_last_timings", {})),
        )


class ValidateStage:
    """Assemble the final result from the best pass and validate it."""

    name = "validate"

    def run(self, context: SynthesisContext) -> "SynthesisResult":
        from .synthesizer import SynthesisResult

        best = context.best
        schedule = best.schedule()
        paths = schedule.transportation_paths(context.assay.edges)
        storage_plan = StoragePlanStage().run(context, best)
        result = SynthesisResult(
            assay=context.assay,
            spec=context.spec,
            layering=context.layering,
            schedule=schedule,
            devices=best.used_devices(),
            paths=paths,
            history=context.history,
            runtime=time.monotonic() - context.started,
            transport=best.transport_estimator or context.transport,
            edge_transport=dict(best.transport_snapshot),
            cache_counters=(
                context.cache.counters() if context.cache is not None else {}
            ),
            storage_plan=storage_plan,
        )
        result.validate()
        return result


class SynthesisPipeline:
    """The full flow: layering → pass loop → validation."""

    def __init__(
        self,
        layering: LayeringStage | None = None,
        pass_loop: PassLoop | None = None,
        validate: ValidateStage | None = None,
    ) -> None:
        self.layering = layering or LayeringStage()
        self.pass_loop = pass_loop or PassLoop()
        self.validate = validate or ValidateStage()

    @property
    def stages(self) -> tuple:
        return (self.layering, self.pass_loop, self.validate)

    def run(self, context: SynthesisContext) -> "SynthesisResult":
        self.layering.run(context)
        self.pass_loop.run(context)
        return self.validate.run(context)
