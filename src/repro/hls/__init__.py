"""Core high-level synthesis: per-layer ILP + progressive re-synthesis.

The public entry point is :func:`repro.hls.synthesizer.synthesize`, which
takes an :class:`~repro.operations.assay.Assay` and a
:class:`~repro.hls.spec.SynthesisSpec` and returns a
:class:`~repro.hls.synthesizer.SynthesisResult` containing the hybrid
schedule, the device inventory, transportation paths, and the per-iteration
refinement history.

Internally synthesis runs as an explicit pass pipeline
(:mod:`repro.hls.pipeline`) over a shared :class:`~repro.hls.context.
SynthesisContext`, with per-layer solves delegated to pluggable scheduler
backends (:mod:`repro.hls.backends`) and optionally fanned across worker
processes on re-synthesis passes (:mod:`repro.hls.parallel`).
"""

from .backends import (
    SchedulerBackend,
    available_schedulers,
    create_scheduler,
    layer_cost,
    register_scheduler,
)
from .cache import (
    LayerSolveCache,
    fingerprint_layer_problem,
    fingerprint_run,
    strict_fingerprint_layer_problem,
    structural_fingerprint_layer_problem,
)
from .context import PassState, SynthesisContext, UidAllocator
from .pipeline import SynthesisPipeline
from .schedule import HybridSchedule, LayerSchedule, OpPlacement
from .session import LayerSession, SessionPool
from .spec import SynthesisSpec, TransportProgression, Weights
from .synthesizer import (
    IterationRecord,
    SynthesisResult,
    build_inventory,
    synthesize,
)
from .transport import TransportEstimator
from .validate import validate_result

__all__ = [
    "HybridSchedule",
    "LayerSchedule",
    "OpPlacement",
    "LayerSolveCache",
    "fingerprint_layer_problem",
    "fingerprint_run",
    "strict_fingerprint_layer_problem",
    "structural_fingerprint_layer_problem",
    "LayerSession",
    "SessionPool",
    "SynthesisSpec",
    "TransportProgression",
    "Weights",
    "IterationRecord",
    "SynthesisResult",
    "synthesize",
    "build_inventory",
    "TransportEstimator",
    "validate_result",
    "SchedulerBackend",
    "available_schedulers",
    "create_scheduler",
    "register_scheduler",
    "layer_cost",
    "PassState",
    "SynthesisContext",
    "UidAllocator",
    "SynthesisPipeline",
]
