"""Core high-level synthesis: per-layer ILP + progressive re-synthesis.

The public entry point is :func:`repro.hls.synthesizer.synthesize`, which
takes an :class:`~repro.operations.assay.Assay` and a
:class:`~repro.hls.spec.SynthesisSpec` and returns a
:class:`~repro.hls.synthesizer.SynthesisResult` containing the hybrid
schedule, the device inventory, transportation paths, and the per-iteration
refinement history.
"""

from .cache import LayerSolveCache, fingerprint_layer_problem
from .schedule import HybridSchedule, LayerSchedule, OpPlacement
from .spec import SynthesisSpec, TransportProgression, Weights
from .synthesizer import IterationRecord, SynthesisResult, synthesize
from .transport import TransportEstimator
from .validate import validate_result

__all__ = [
    "HybridSchedule",
    "LayerSchedule",
    "OpPlacement",
    "LayerSolveCache",
    "fingerprint_layer_problem",
    "SynthesisSpec",
    "TransportProgression",
    "Weights",
    "IterationRecord",
    "SynthesisResult",
    "synthesize",
    "TransportEstimator",
    "validate_result",
]
