"""Greedy list-scheduling fallback for a layer.

Used when the ILP hits its time limit without an incumbent (large layers on
slow machines) so a synthesis run always produces a *valid* — if not optimal
— hybrid schedule.  The heuristic respects every constraint the ILP
enforces: binding legality under the active mode, dependencies with
transportation times, device exclusivity including release margins, the
indeterminate tail rule (14), and pairwise-distinct devices for
indeterminate operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..devices.device import GeneralDevice
from ..errors import SchedulingError, SpecificationError
from .decode import LayerSolveResult
from .milp_model import LayerProblem
from .schedule import LayerSchedule, OpPlacement
from .spec import SynthesisSpec


@dataclass
class _Timeline:
    """Busy intervals of one device within the layer."""

    device: GeneralDevice
    busy: list[tuple[int, int]] = field(default_factory=list)

    def earliest_fit(self, ready: int, length: int) -> int:
        """Earliest start >= ready such that [start, start+length) is free."""
        start = ready
        for lo, hi in sorted(self.busy):
            if start + length <= lo:
                break
            if start < hi:
                start = hi
        return start

    def reserve(self, start: int, length: int) -> None:
        self.busy.append((start, start + length))


def schedule_layer_greedy(
    problem: LayerProblem, spec: SynthesisSpec, uid_allocator, guide=None
) -> LayerSolveResult:
    """Greedy feasible schedule for ``problem`` (see module docstring).

    ``guide`` optionally supplies rounded LP-relaxation decisions (a
    :class:`repro.hls.rounding.RoundingGuide`): a preferred binding per
    operation and a device configuration per new slot.  Each preference is
    honored only when it keeps the schedule feasible under the exact rules
    below — anything illegal falls back to the plain greedy choice, so a
    guided run is exactly as safe as an unguided one.  With ``guide=None``
    the behavior is byte-identical to the historical heuristic.
    """
    mode = spec.binding_mode
    by_uid = {op.uid: op for op in problem.ops}
    children: dict[str, list[str]] = {op.uid: [] for op in problem.ops}
    parents: dict[str, list[str]] = {op.uid: [] for op in problem.ops}
    for parent, child in problem.in_layer_edges:
        children[parent].append(child)
        parents[child].append(parent)

    timelines: dict[str, _Timeline] = {
        d.uid: _Timeline(d) for d in problem.fixed_devices
    }
    new_devices: list[GeneralDevice] = []
    slots_left = problem.free_slots

    def occupancy(uid: str) -> int:
        op = by_uid[uid]
        return op.duration.scheduled + problem.release.get(uid, 0)

    pending: set[str] = {op.uid for op in problem.ops}

    def slots_reserved(exclude_uid: str = "") -> int:
        """Slots that must stay available for still-unscheduled operations.

        One slot per requirement signature among pending fixed ops that no
        existing device can execute, plus one per pending indeterminate op
        that cannot be matched to a *distinct* compatible device (the
        indeterminate tail needs pairwise-different devices).
        """
        devices = [t.device for t in timelines.values()]
        uncovered_sigs: set[tuple] = set()
        for uid in pending:
            op = by_uid[uid]
            if uid == exclude_uid or op.is_indeterminate:
                continue
            if not any(d.can_execute(op, mode) for d in devices):
                uncovered_sigs.add(op.requirement_signature())
        matched: set[str] = set()
        unmatched_ind = 0
        for uid in sorted(u for u in pending if by_uid[u].is_indeterminate):
            if uid == exclude_uid:
                continue
            op = by_uid[uid]
            choice = next(
                (
                    d.uid for d in devices
                    if d.uid not in matched and d.can_execute(op, mode)
                ),
                None,
            )
            if choice is None:
                unmatched_ind += 1
            else:
                matched.add(choice)
        return len(uncovered_sigs) + unmatched_ind

    # Storage pressure (extension): ops with layer-crossing edges prefer
    # the fixed device already holding (or later consuming) their reagent,
    # weighted by the buffering cost a co-binding avoids.  Empty when
    # ``storage_mode`` is off, leaving the heuristic byte-identical.
    pressure: dict[str, dict[str, float]] = {}
    for (parent_device, child), weight in problem.storage_in.items():
        by_dev = pressure.setdefault(child, {})
        by_dev[parent_device] = by_dev.get(parent_device, 0.0) + weight
    for (parent, child_device), weight in problem.storage_out.items():
        by_dev = pressure.setdefault(parent, {})
        by_dev[child_device] = by_dev.get(child_device, 0.0) + weight

    def pressured_choice(
        uid: str, ready: int, exclude: set[str]
    ) -> tuple[int, str] | None:
        """Pressured device whose extra wait costs less than the storage
        it avoids (``C_t * delay <= pressure``), earliest-start first."""
        op = by_uid[uid]
        best_pref: tuple[int, str] | None = None
        for dev_uid, weight in sorted(pressure[uid].items()):
            if dev_uid in exclude or dev_uid not in timelines:
                continue
            timeline = timelines[dev_uid]
            if not timeline.device.can_execute(op, mode):
                continue
            start = timeline.earliest_fit(ready, occupancy(uid))
            if spec.weights.time * (start - ready) > weight:
                continue
            if best_pref is None or (start, dev_uid) < best_pref:
                best_pref = (start, dev_uid)
        return best_pref

    # Guide slot index -> uid of the device materialized for that slot.
    slot_uid: dict[int, str] = {}

    def guide_template(op, slot: int):
        """The guide's device config for ``slot`` when it can run ``op``."""
        if guide is None:
            return None
        template = guide.slot_config.get(slot)
        if template is None:
            return None
        kind, capacity, accessories, signature = template
        try:
            probe = GeneralDevice(
                uid="guide-probe",
                container=kind,
                capacity=capacity,
                accessories=frozenset(accessories),
                signature=signature,
            )
        except SpecificationError:
            return None
        return probe if probe.can_execute(op, mode) else None

    def create_device(op, slot: int | None = None) -> str:
        nonlocal slots_left
        probe = guide_template(op, slot) if slot is not None else None
        if probe is not None:
            device = GeneralDevice(
                uid=uid_allocator(),
                container=probe.container,
                capacity=probe.capacity,
                accessories=probe.accessories,
                signature=probe.signature,
            )
        else:
            device = GeneralDevice.for_operation(uid_allocator(), op, mode)
        timelines[device.uid] = _Timeline(device)
        new_devices.append(device)
        slots_left -= 1
        if slot is not None:
            slot_uid[slot] = device.uid
        return device.uid

    def preferred_choice(
        uid: str, ready: int, exclude: set[str], can_create: bool
    ) -> tuple[str, int] | None:
        """The guide's binding for ``uid``, when it is legal right now."""
        pref = guide.choice.get(uid)
        op = by_uid[uid]
        if isinstance(pref, int):
            target = slot_uid.get(pref)
            if target is None:
                # The preferred slot is not materialized yet: create it on
                # demand, under the same slot-budget rule as any creation.
                if can_create and guide_template(op, pref) is not None:
                    return create_device(op, slot=pref), ready
                return None
        elif isinstance(pref, str):
            target = pref if pref in timelines else None
        else:
            return None
        if target is None or target in exclude:
            return None
        timeline = timelines[target]
        if not timeline.device.can_execute(op, mode):
            return None
        return target, timeline.earliest_fit(ready, occupancy(uid))

    def acquire_device(uid: str, ready: int, exclude: set[str]) -> tuple[str, int]:
        """Choose a device and start time; creates a device if needed.

        New devices are only created when enough free slots remain to still
        cover every pending requirement (see :func:`slots_reserved`), so a
        feasible layer never dead-ends on slot exhaustion.
        """
        op = by_uid[uid]
        best: tuple[int, str] | None = None
        for dev_uid, timeline in timelines.items():
            if dev_uid in exclude:
                continue
            if not timeline.device.can_execute(op, mode):
                continue
            start = timeline.earliest_fit(ready, occupancy(uid))
            if best is None or (start, dev_uid) < best:
                best = (start, dev_uid)
        if guide is not None:
            can_create = slots_left > 0 and (
                best is None or slots_left - 1 >= slots_reserved(exclude_uid=uid)
            )
            preferred = preferred_choice(uid, ready, exclude, can_create)
            if preferred is not None:
                return preferred
        if uid in pressure:
            pressured = pressured_choice(uid, ready, exclude)
            if pressured is not None:
                return pressured[1], pressured[0]
        # Prefer reuse unless a fresh device starts strictly earlier.
        if best is not None and best[0] <= ready:
            return best[1], best[0]
        if best is None:
            # Mandatory creation: reduces the reservation it consumes.
            if slots_left > 0:
                return create_device(op), ready
            raise SchedulingError(
                f"no device can execute {uid!r} and no slot left "
                f"(|D|={spec.max_devices})"
            )
        # Discretionary creation (pure parallelism): keep the reservation.
        if slots_left > 0 and slots_left - 1 >= slots_reserved(exclude_uid=uid):
            return create_device(op), ready
        return best[1], best[0]

    # -- pass 1: fixed-duration ops in topological order -------------------
    schedule = LayerSchedule(index=problem.layer_index)
    binding: dict[str, str] = {}
    finish: dict[str, int] = {}
    order = _topo_order(problem)

    for uid in order:
        op = by_uid[uid]
        if op.is_indeterminate:
            continue
        ready = max(
            (
                finish[p] + problem.edge_transport[(p, uid)]
                for p in parents[uid]
                if not by_uid[p].is_indeterminate
            ),
            default=0,
        )
        dev_uid, start = acquire_device(uid, ready, exclude=set())
        timelines[dev_uid].reserve(start, occupancy(uid))
        binding[uid] = dev_uid
        finish[uid] = start + op.duration.scheduled
        pending.discard(uid)
        schedule.place(
            OpPlacement(uid, dev_uid, start, op.duration.scheduled, False)
        )

    # -- pass 2: indeterminate tail --------------------------------------
    # Each indeterminate op gets its own device and starts after its inputs;
    # rule (14) then requires every scheduled start <= ind start + min dur.
    ind_ops = [op for op in problem.ops if op.is_indeterminate]
    taken: set[str] = set()
    ind_start: dict[str, int] = {}

    def sole_options_of_others(current_uid: str) -> set[str]:
        """Devices that are the only compatible choice of another pending
        indeterminate op — don't steal them unless unavoidable."""
        reserved: set[str] = set()
        for other in ind_ops:
            if other.uid == current_uid or other.uid not in pending:
                continue
            options = [
                t.device.uid for t in timelines.values()
                if t.device.uid not in taken
                and t.device.can_execute(other, mode)
            ]
            if len(options) == 1:
                reserved.add(options[0])
        return reserved

    for op in sorted(ind_ops, key=lambda o: o.uid):
        ready = max(
            (
                finish[p] + problem.edge_transport[(p, op.uid)]
                for p in parents[op.uid]
            ),
            default=0,
        )
        avoid = taken | sole_options_of_others(op.uid)
        try:
            dev_uid, start = acquire_device(op.uid, ready, exclude=avoid)
        except SchedulingError:
            # Unavoidable: compete for the reserved devices after all.
            dev_uid, start = acquire_device(op.uid, ready, exclude=taken)
        # The op runs open-ended past its minimum, so its device must be
        # clear from `start` onwards: push past every existing reservation.
        start = timelines[dev_uid].earliest_fit(start, 10**9)
        taken.add(dev_uid)
        binding[op.uid] = dev_uid
        ind_start[op.uid] = start
        pending.discard(op.uid)
        timelines[dev_uid].reserve(start, occupancy(op.uid))

    # Enforce (14): raise indeterminate starts until every start fits below
    # every indeterminate minimum completion.  Raising starts keeps all
    # other constraints valid (devices are exclusive to these ops from
    # `start` on).
    if ind_ops:
        fixed_latest = max(
            (p.start for p in schedule.placements.values()), default=0
        )
        changed = True
        while changed:
            changed = False
            latest = max(
                [fixed_latest] + [ind_start[o.uid] for o in ind_ops]
            )
            for op in ind_ops:
                needed = latest - op.duration.scheduled
                if ind_start[op.uid] < needed:
                    ind_start[op.uid] = needed
                    changed = True
        for op in ind_ops:
            schedule.place(
                OpPlacement(
                    op.uid,
                    binding[op.uid],
                    ind_start[op.uid],
                    op.duration.scheduled,
                    True,
                )
            )

    return LayerSolveResult(
        schedule=schedule,
        binding=binding,
        new_devices=new_devices,
        objective=float("nan"),
        solver_status="heuristic",
        solver_runtime=0.0,
    )


def _topo_order(problem: LayerProblem) -> list[str]:
    """Topological order of the layer's ops (Kahn, stable by input order)."""
    indeg = {op.uid: 0 for op in problem.ops}
    succ: dict[str, list[str]] = {op.uid: [] for op in problem.ops}
    for parent, child in problem.in_layer_edges:
        indeg[child] += 1
        succ[parent].append(child)
    order = [uid for uid, d in indeg.items() if d == 0]
    head = 0
    while head < len(order):
        uid = order[head]
        head += 1
        for child in succ[uid]:
            indeg[child] -= 1
            if indeg[child] == 0:
                order.append(child)
    if len(order) != len(problem.ops):
        raise SchedulingError("cycle inside a layer")  # pragma: no cover
    return order
