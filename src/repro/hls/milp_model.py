"""Per-layer ILP model construction (paper Sec. 4, constraints (1)–(21)).

Each layer of the hybrid schedule is synthesized by one ILP.  The model
variables follow Table 1 of the paper:

* device configuration — for every *free device slot* (a device the layer
  may newly integrate), binaries select one (container kind, capacity)
  combination and any accessories.  Devices inherited from other layers /
  the previous iteration are constants: their configuration is fixed and
  their cost already paid.
* ``o_d[i, j]`` — operation-to-device binding binaries (constraint (5)).
* ``st_i`` — integer start times; ``sum_t`` — the layer makespan.
* ``q0/q1/q2`` — the big-M disjunction binaries of constraints (10)–(13).
* ``p_{d,d'}`` — transportation-path indicators (constraint (21)); paths
  already integrated by other layers are free.

Two deliberate deviations from the paper's formulas, both documented in
DESIGN.md:

* constraints (3)/(4) as printed force every ring to be *large* and every
  chamber to be *tiny* (summing them with (2) over-constrains the capacity
  one-hot).  The stated intent — ring ∈ {large, medium, small}, chamber ∈
  {medium, small, tiny} — is encoded directly by enumerating the six legal
  (kind, capacity) combinations as one-hot configuration binaries.
* pairs involving an indeterminate operation cannot use the "starts after
  completion" escape of constraint (10), because an indeterminate operation
  has no known completion: such pairs must either finish before the
  indeterminate operation starts or bind to different devices, and two
  indeterminate operations must always bind to different devices (the paper
  states they "are mapped to different devices to allow parallel
  execution").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..components.containers import Capacity, ContainerKind, allowed_capacities
from ..devices.device import BindingMode, GeneralDevice
from ..errors import InfeasibleError
from ..ilp import LinExpr, Model, Variable
from ..operations.operation import Operation
from .spec import SynthesisSpec
from .transport import path_key

if TYPE_CHECKING:  # pragma: no cover
    from .decode import LayerSolveResult

#: The six legal (container kind, capacity) combinations.
LEGAL_COMBOS: tuple[tuple[ContainerKind, Capacity], ...] = tuple(
    (kind, cap) for kind in ContainerKind for cap in allowed_capacities(kind)
)

#: Device key of a free slot.
SlotKey = tuple[str, int]
#: Either a fixed device uid (str) or a slot key.
DeviceKey = "str | SlotKey"


def slot_key(index: int) -> SlotKey:
    return ("slot", index)


def is_slot(key) -> bool:
    return isinstance(key, tuple) and len(key) == 2 and key[0] == "slot"


@dataclass(frozen=True)
class ConflictGroup:
    """One op pair's device-conflict disjunction (constraints (10)–(13)).

    Groups are enumerated for every unordered, dependency-unrelated pair
    that could share a device.  Their rows are emitted either eagerly at
    build time or lazily by :func:`separate_conflicts` when a solution
    actually violates them; both paths go through
    :func:`_emit_conflict_group`, the single source of truth for the rows.
    """

    #: "fixed" (both determinate), "mixed" (one indeterminate), or "ind".
    kind: str
    #: op uids in pair-enumeration order (``a`` before ``b`` in the layer).
    a: str
    b: str
    #: the determinate / indeterminate op of a "mixed" pair, else None.
    fixed: str | None
    ind: str | None
    #: device keys both ops could legally bind.
    shared: tuple


@dataclass
class LayerProblem:
    """Everything one layer's ILP needs to know."""

    layer_index: int
    ops: list[Operation]
    #: dependency edges with both endpoints in this layer.
    in_layer_edges: list[tuple[str, str]]
    #: per-edge transportation estimates for ``in_layer_edges``.
    edge_transport: dict[tuple[str, str], int]
    #: device release margin per op (time its device stays busy shipping).
    release: dict[str, int]
    #: devices whose configuration is already fixed (inherited).
    fixed_devices: list[GeneralDevice]
    #: how many new devices this layer may integrate.
    free_slots: int
    #: cross-layer edges arriving here: (parent device uid, child uid).
    incoming: list[tuple[str, str]] = field(default_factory=list)
    #: cross-layer edges leaving here: (parent uid, child device uid); only
    #: known during re-synthesis, empty in the first forward pass.
    outgoing: list[tuple[str, str]] = field(default_factory=list)
    #: transportation paths already integrated by other layers (free).
    existing_paths: set[tuple[str, str]] = field(default_factory=set)
    #: storage pressure on arriving cross-layer edges, keyed like
    #: ``incoming`` entries (parent device uid, child uid): the weighted
    #: cost charged when the child binds away from the parent's device
    #: (the buffered reagent then needs channel/reservoir storage).
    #: Empty when ``storage_mode`` is ``off``.
    storage_in: dict[tuple[str, str], float] = field(default_factory=dict)
    #: storage pressure on departing cross-layer edges, keyed like
    #: ``outgoing`` entries (parent uid, child device uid).
    storage_out: dict[tuple[str, str], float] = field(default_factory=dict)


@dataclass
class LayerModel:
    """A built ILP plus the variable handles needed for decoding."""

    model: Model
    problem: LayerProblem
    spec: SynthesisSpec
    horizon: int
    device_keys: list
    start: dict[str, Variable]
    makespan: Variable
    od: dict[tuple[str, object], Variable]
    conf: dict[tuple[int, ContainerKind, Capacity], Variable]
    acc: dict[tuple[int, str], Variable]
    used: dict[int, Variable]
    sig: dict[tuple[int, tuple], Variable]
    path_vars: dict[tuple, Variable]
    #: big-M disjunction binaries with their semantics, for warm-start
    #: encoding: ("q0"|"q1"|"q2", var, a_uid, b_uid).  q0 relaxes "a starts
    #: after b completes (+release)", q1 relaxes "a completes (+release)
    #: before b starts", q2 permits a and b to share one device.
    disj: list[tuple[str, Variable, str, str]] = field(default_factory=list)
    #: every conflict group of the layer, in pair-enumeration order.
    conflict_groups: list[ConflictGroup] = field(default_factory=list)
    #: (a, b) pairs whose conflict rows are present in the model.
    emitted: set[tuple[str, str]] = field(default_factory=set)
    #: conflict escape binaries by ("q0"|"q1"|"q2", a, b) — the handles
    #: delta encoding needs to retarget big-M coefficients.
    qvars: dict[tuple[str, str, str], Variable] = field(default_factory=dict)
    #: legal device keys per op uid (delta encoding re-derives row names).
    legal_keys: dict[str, list] = field(default_factory=dict)
    #: conflict rows are generated lazily by separation instead of eagerly.
    lazy_conflicts: bool = False

    @property
    def fully_separated(self) -> bool:
        """True when every conflict group's rows are in the model."""
        return len(self.emitted) >= len(self.conflict_groups)


def _op_combos(op: Operation) -> list[tuple[ContainerKind, Capacity]]:
    """Legal (kind, capacity) combos that satisfy ``op``'s container spec."""
    return [
        (kind, op.capacity)
        for kind in op.allowed_container_kinds
    ]


def _realized_combo(op_signature: tuple) -> tuple[ContainerKind, Capacity]:
    """The concrete combo a conventional-baseline device takes for a
    signature; chambers are preferred when the kind is open (cheaper)."""
    container_name, capacity_name, _acc = op_signature
    capacity = Capacity(capacity_name)
    if container_name is not None:
        return ContainerKind(container_name), capacity
    if capacity in allowed_capacities(ContainerKind.CHAMBER):
        return ContainerKind.CHAMBER, capacity
    return ContainerKind.RING, capacity


def _in_layer_reachability(
    ops: list[Operation], edges: list[tuple[str, str]]
) -> set[tuple[str, str]]:
    """All ordered (ancestor, descendant) pairs within the layer."""
    succ: dict[str, list[str]] = {op.uid: [] for op in ops}
    for parent, child in edges:
        succ[parent].append(child)
    closed: set[tuple[str, str]] = set()
    for op in ops:
        stack = list(succ[op.uid])
        seen: set[str] = set()
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(succ[node])
        closed.update((op.uid, d) for d in seen)
    return closed


def build_layer_model(
    problem: LayerProblem,
    spec: SynthesisSpec,
    lazy_conflicts: bool = False,
) -> LayerModel:
    """Construct the layer ILP (see module docstring).

    With ``lazy_conflicts=True`` the device-conflict disjunctions
    ((10)–(13)) are enumerated but *not* emitted; the solve loop calls
    :func:`separate_conflicts` to add only the groups a trial solution
    violates.  The relaxed model's solutions are only valid layer schedules
    once separation converges (no violated group remains).
    """
    ops = problem.ops
    by_uid = {op.uid: op for op in ops}
    mode = spec.binding_mode
    accessory_names = list(spec.registry.names)

    horizon = sum(
        op.duration.scheduled + problem.release.get(op.uid, 0) for op in ops
    ) + sum(problem.edge_transport.values()) + 1
    big_m = horizon

    model = Model(f"layer{problem.layer_index}", sense="min")

    # ---- device slots: configuration binaries --------------------------
    conf: dict[tuple[int, ContainerKind, Capacity], Variable] = {}
    acc: dict[tuple[int, str], Variable] = {}
    used: dict[int, Variable] = {}
    sig: dict[tuple[int, tuple], Variable] = {}

    signatures = sorted(
        {op.requirement_signature() for op in ops}, key=repr
    )

    for j in range(problem.free_slots):
        used[j] = model.binary(f"used[{j}]")
        for kind, cap in LEGAL_COMBOS:
            conf[j, kind, cap] = model.binary(f"conf[{j},{kind.short},{cap.short}]")
        # (1)+(2) merged on legal combos: one configuration iff used.
        model.add(
            LinExpr.sum(conf[j, k, c] for k, c in LEGAL_COMBOS) == used[j],
            name=f"one_config[{j}]",
        )
        for name in accessory_names:
            acc[j, name] = model.binary(f"acc[{j},{name}]")
            model.add(acc[j, name] <= used[j], name=f"acc_used[{j},{name}]")
        if mode is BindingMode.EXACT:
            for s in signatures:
                sig[j, s] = model.binary(f"sig[{j},{signatures.index(s)}]")
            model.add(
                LinExpr.sum(sig[j, s] for s in signatures) == used[j],
                name=f"one_sig[{j}]",
            )
            # Signature determines the full configuration.
            for kind, cap in LEGAL_COMBOS:
                matching = [
                    sig[j, s] for s in signatures if _realized_combo(s) == (kind, cap)
                ]
                model.add(
                    conf[j, kind, cap] == LinExpr.sum(matching),
                    name=f"sig_conf[{j},{kind.short},{cap.short}]",
                )
            for name in accessory_names:
                matching = [sig[j, s] for s in signatures if name in s[2]]
                model.add(
                    acc[j, name] == LinExpr.sum(matching),
                    name=f"sig_acc[{j},{name}]",
                )
    # Symmetry breaking: slots fill in order.
    for j in range(1, problem.free_slots):
        model.add(used[j - 1] >= used[j], name=f"slot_order[{j}]")

    # ---- binding variables (constraint (5)) ------------------------------
    device_keys: list = [d.uid for d in problem.fixed_devices] + [
        slot_key(j) for j in range(problem.free_slots)
    ]
    fixed_by_uid = {d.uid: d for d in problem.fixed_devices}
    od: dict[tuple[str, object], Variable] = {}

    legal_keys: dict[str, list] = {}
    for op in ops:
        keys: list = [
            d.uid
            for d in problem.fixed_devices
            if d.can_execute(op, mode)
        ]
        keys.extend(slot_key(j) for j in range(problem.free_slots))
        if not keys:
            raise InfeasibleError(
                f"operation {op.uid!r} has no legal device and no free slot "
                f"(|D|={spec.max_devices} too small?)"
            )
        legal_keys[op.uid] = keys
        for key in keys:
            od[op.uid, key] = model.binary(f"od[{op.uid},{key}]")
        model.add(
            LinExpr.sum(od[op.uid, key] for key in keys) == 1,
            name=f"bind_once[{op.uid}]",
        )

    # ---- component consistency on free slots ((6)-(8)) -------------------
    for op in ops:
        combos = _op_combos(op)
        for j in range(problem.free_slots):
            bind = od[op.uid, slot_key(j)]
            if mode is BindingMode.EXACT:
                model.add(
                    bind <= sig[j, op.requirement_signature()],
                    name=f"sig_match[{op.uid},{j}]",
                )
                continue
            model.add(
                LinExpr.sum(conf[j, k, c] for k, c in combos) >= bind,
                name=f"container[{op.uid},{j}]",
            )
            for name in sorted(op.accessories):
                model.add(
                    acc[j, name] >= bind, name=f"need_acc[{op.uid},{j},{name}]"
                )
        # Tie slot usage to bindings (tightens the LP relaxation).
    for j in range(problem.free_slots):
        bound_here = [od[op.uid, slot_key(j)] for op in ops]
        for var in bound_here:
            model.add(used[j] >= var)
        model.add(used[j] <= LinExpr.sum(bound_here), name=f"used_tight[{j}]")

    # ---- start times & dependencies ((9)) ---------------------------------
    start: dict[str, Variable] = {
        op.uid: model.integer(f"st[{op.uid}]", lb=0, ub=horizon) for op in ops
    }
    makespan = model.integer("sum_t", lb=0, ub=horizon)

    for parent, child in problem.in_layer_edges:
        transport = problem.edge_transport[(parent, child)]
        model.add(
            start[child]
            >= start[parent] + by_uid[parent].duration.scheduled + transport,
            name=f"dep[{parent}->{child}]",
        )
        # When parent and child share a device, the child additionally waits
        # for the parent's full release margin (the device keeps shipping to
        # the parent's other children before it frees up).
        release = problem.release.get(parent, 0)
        if release > transport:
            for key in legal_keys[parent]:
                if key not in legal_keys[child]:
                    continue
                model.add(
                    start[child]
                    + big_m * (2 - od[parent, key] - od[child, key])
                    >= start[parent]
                    + by_uid[parent].duration.scheduled
                    + release,
                    name=f"dep_rel[{parent}->{child},{key}]",
                )

    # ---- makespan ((15)) ----------------------------------------------------
    for op in ops:
        model.add(
            makespan >= start[op.uid] + op.duration.scheduled,
            name=f"mk[{op.uid}]",
        )

    # ---- indeterminate tail ((14)) -----------------------------------------
    indeterminate = [op for op in ops if op.is_indeterminate]
    for ind in indeterminate:
        bound = start[ind.uid] + ind.duration.scheduled
        for op in ops:
            if op.uid == ind.uid:
                continue
            model.add(
                start[op.uid] <= bound, name=f"tail[{op.uid}<={ind.uid}]"
            )

    # ---- device conflicts ((10)-(13)) ----------------------------------------
    reach = _in_layer_reachability(ops, problem.in_layer_edges)

    def shared_keys(a: Operation, b: Operation) -> list:
        keys = []
        for key in legal_keys[a.uid]:
            if key not in legal_keys[b.uid]:
                continue
            if is_slot(key):
                if mode is BindingMode.EXACT:
                    if a.requirement_signature() != b.requirement_signature():
                        continue
                else:
                    if not (set(_op_combos(a)) & set(_op_combos(b))):
                        continue
            keys.append(key)
        return keys

    # The LayerModel exists from here on so the conflict emitter (shared
    # with the lazy separation loop) can register rows and escape binaries
    # on it; path_vars is filled below, the objective is set last.
    layer_model = LayerModel(
        model=model,
        problem=problem,
        spec=spec,
        horizon=horizon,
        device_keys=device_keys,
        start=start,
        makespan=makespan,
        od=od,
        conf=conf,
        acc=acc,
        used=used,
        sig=sig,
        path_vars={},
        legal_keys=legal_keys,
        lazy_conflicts=lazy_conflicts,
    )

    for i, op_a in enumerate(ops):
        for op_b in ops[i + 1 :]:
            a, b = op_a.uid, op_b.uid
            if (a, b) in reach or (b, a) in reach:
                continue  # dependency-ordered: can never overlap
            shared = shared_keys(op_a, op_b)
            if not shared:
                continue  # cannot share a device; overlap is harmless
            if op_a.is_indeterminate and op_b.is_indeterminate:
                group = ConflictGroup("ind", a, b, None, None, tuple(shared))
            elif op_a.is_indeterminate or op_b.is_indeterminate:
                # fixed op must fully precede the indeterminate one, or they
                # bind apart.
                fixed_op, ind_op = (
                    (op_b, op_a) if op_a.is_indeterminate else (op_a, op_b)
                )
                group = ConflictGroup(
                    "mixed", a, b, fixed_op.uid, ind_op.uid, tuple(shared)
                )
            else:
                group = ConflictGroup("fixed", a, b, None, None, tuple(shared))
            layer_model.conflict_groups.append(group)
            if not lazy_conflicts:
                _emit_conflict_group(layer_model, group)

    # ---- transportation paths ((21)) -------------------------------------------
    path_vars: dict[tuple, Variable] = layer_model.path_vars

    def get_path_var(key_a, key_b) -> Variable | None:
        """Path variable for a device-key pair; None when the path is free."""
        if key_a == key_b:
            return None
        pair = tuple(sorted((key_a, key_b), key=repr))
        if (
            isinstance(key_a, str)
            and isinstance(key_b, str)
            and path_key(key_a, key_b) in problem.existing_paths
        ):
            return None
        if pair not in path_vars:
            path_vars[pair] = model.binary(f"path[{pair}]")
        return path_vars[pair]

    for parent, child in problem.in_layer_edges:
        for key_p in legal_keys[parent]:
            for key_c in legal_keys[child]:
                var = get_path_var(key_p, key_c)
                if var is None:
                    continue
                model.add(
                    od[parent, key_p] + od[child, key_c] - var <= 1,
                    name=f"path[{parent}->{child},{key_p},{key_c}]",
                )
    for parent_device, child in problem.incoming:
        for key_c in legal_keys[child]:
            if key_c == parent_device:
                continue
            var = get_path_var(parent_device, key_c)
            if var is None:
                continue
            model.add(od[child, key_c] <= var, name=f"path_in[{child},{key_c}]")
    for parent, child_device in problem.outgoing:
        for key_p in legal_keys[parent]:
            if key_p == child_device:
                continue
            var = get_path_var(key_p, child_device)
            if var is None:
                continue
            model.add(od[parent, key_p] <= var, name=f"path_out[{parent},{key_p}]")

    # ---- objective ((15)-(21) summations) ----------------------------------------
    costs = spec.cost_model
    area_expr = LinExpr.sum(
        costs.container_area(kind, cap) * conf[j, kind, cap]
        for j in range(problem.free_slots)
        for kind, cap in LEGAL_COMBOS
    )
    processing_expr = LinExpr.sum(
        costs.container_cost(kind, cap) * conf[j, kind, cap]
        for j in range(problem.free_slots)
        for kind, cap in LEGAL_COMBOS
    ) + LinExpr.sum(
        costs.accessory_cost(name) * acc[j, name]
        for j in range(problem.free_slots)
        for name in accessory_names
    )
    paths_expr = LinExpr.sum(path_vars.values())

    # Storage pressure (extension): a crossing edge whose endpoints bind
    # apart buffers its reagent, charged ``w`` per edge.  ``w * (1 - od)``
    # when co-binding is legal (pure objective term — LP relaxations and
    # warm starts are untouched); the unavoidable constant ``w`` when it
    # is not, so integral model objectives keep matching ``layer_cost``.
    storage_terms = []
    for (parent_device, child), weight in sorted(problem.storage_in.items()):
        var = od.get((child, parent_device))
        storage_terms.append(
            weight * (1 - var) if var is not None else weight
        )
    for (parent, child_device), weight in sorted(problem.storage_out.items()):
        var = od.get((parent, child_device))
        storage_terms.append(
            weight * (1 - var) if var is not None else weight
        )
    storage_expr = LinExpr.sum(storage_terms)

    weights = spec.weights
    model.minimize(
        weights.time * makespan
        + weights.area * area_expr
        + weights.processing * processing_expr
        + weights.paths * paths_expr
        + storage_expr
    )

    return layer_model


def _emit_shared_device_rows(
    layer_model: LayerModel,
    a: str,
    b: str,
    shared: tuple,
    escape: Variable | None,
    prefix: str,
) -> None:
    """The per-key "bind apart" rows every conflict kind shares.

    ``od[a,key] + od[b,key] <= 1`` per shared key, minus the ``escape``
    binary when the pair has a timing alternative (q2 permits sharing).
    """
    model = layer_model.model
    od = layer_model.od
    for key in shared:
        expr = od[a, key] + od[b, key]
        if escape is not None:
            expr = expr - escape
        model.add(expr <= 1, name=f"{prefix}[{a},{b},{key}]")


def _emit_conflict_group(layer_model: LayerModel, group: ConflictGroup) -> None:
    """Emit one conflict group's rows ((10)–(13)) into the model.

    Single source of truth for eager builds and the lazy separation loop;
    row and variable names are identical either way.
    """
    model = layer_model.model
    problem = layer_model.problem
    start = layer_model.start
    big_m = layer_model.horizon
    by_uid = {op.uid: op for op in problem.ops}
    a, b = group.a, group.b

    if group.kind == "ind":
        _emit_shared_device_rows(layer_model, a, b, group.shared, None, "ind_apart")
    elif group.kind == "mixed":
        q1 = model.binary(f"q1[{a},{b}]")
        q2 = model.binary(f"q2[{a},{b}]")
        layer_model.disj.append(("q1", q1, group.fixed, group.ind))
        layer_model.disj.append(("q2", q2, a, b))
        layer_model.qvars[("q1", a, b)] = q1
        layer_model.qvars[("q2", a, b)] = q2
        fixed_op = by_uid[group.fixed]
        release = problem.release.get(group.fixed, 0)
        model.add(
            start[group.fixed]
            + fixed_op.duration.scheduled
            + release
            - q1 * big_m
            <= start[group.ind],
            name=f"before_ind[{a},{b}]",
        )
        _emit_shared_device_rows(layer_model, a, b, group.shared, q2, "conflict")
        model.add(q1 + q2 <= 1, name=f"disj[{a},{b}]")
    else:
        q0 = model.binary(f"q0[{a},{b}]")
        q1 = model.binary(f"q1[{a},{b}]")
        q2 = model.binary(f"q2[{a},{b}]")
        layer_model.disj.append(("q0", q0, a, b))
        layer_model.disj.append(("q1", q1, a, b))
        layer_model.disj.append(("q2", q2, a, b))
        layer_model.qvars[("q0", a, b)] = q0
        layer_model.qvars[("q1", a, b)] = q1
        layer_model.qvars[("q2", a, b)] = q2
        rel_a = problem.release.get(a, 0)
        rel_b = problem.release.get(b, 0)
        model.add(
            start[a] + q0 * big_m
            >= start[b] + by_uid[b].duration.scheduled + rel_b,
            name=f"after[{a},{b}]",
        )
        model.add(
            start[a] + by_uid[a].duration.scheduled + rel_a - q1 * big_m
            <= start[b],
            name=f"before[{a},{b}]",
        )
        _emit_shared_device_rows(layer_model, a, b, group.shared, q2, "conflict")
        model.add(q0 + q1 + q2 <= 2, name=f"disj[{a},{b}]")
    layer_model.emitted.add((a, b))


def _group_violated(
    group: ConflictGroup,
    starts: dict[str, float],
    key_of: dict[str, object],
    by_uid: dict[str, Operation],
    release: dict[str, int],
) -> bool:
    """Does an assignment (starts + chosen device keys) violate the group?"""
    key_a = key_of.get(group.a)
    if key_a is None or key_a != key_of.get(group.b):
        return False  # bound apart: every kind is satisfied
    if group.kind == "ind":
        return True  # two indeterminate ops may never share a device
    if group.kind == "mixed":
        fixed, ind = group.fixed, group.ind
        done = (
            starts[fixed]
            + by_uid[fixed].duration.scheduled
            + release.get(fixed, 0)
        )
        return not done <= starts[ind]
    a, b = group.a, group.b
    done_a = starts[a] + by_uid[a].duration.scheduled + release.get(a, 0)
    done_b = starts[b] + by_uid[b].duration.scheduled + release.get(b, 0)
    return not (starts[a] >= done_b or done_a <= starts[b])


def _solution_assignment(
    layer_model: LayerModel, values: dict[Variable, float]
) -> tuple[dict[str, float], dict[str, object]]:
    """Extract (start times, chosen device key per op) from variable values."""
    starts = {
        uid: float(round(values[var]))
        for uid, var in layer_model.start.items()
    }
    key_of: dict[str, object] = {}
    for (uid, key), var in layer_model.od.items():
        if values[var] > 0.5:
            key_of[uid] = key
    return starts, key_of


def unemitted_violations(
    layer_model: LayerModel, values: dict[Variable, float]
) -> list[ConflictGroup]:
    """Conflict groups not yet in the model that ``values`` violates."""
    pending = [
        g
        for g in layer_model.conflict_groups
        if (g.a, g.b) not in layer_model.emitted
    ]
    if not pending:
        return []
    problem = layer_model.problem
    by_uid = {op.uid: op for op in problem.ops}
    starts, key_of = _solution_assignment(layer_model, values)
    return [
        g
        for g in pending
        if _group_violated(g, starts, key_of, by_uid, problem.release)
    ]


def separate_conflicts(
    layer_model: LayerModel, values: dict[Variable, float]
) -> list[ConflictGroup]:
    """One round of lazy separation: emit the groups ``values`` violates.

    Returns the newly emitted groups (empty means the solution is clean —
    feasible for the *fully* separated model, not just the relaxed one).
    """
    violated = unemitted_violations(layer_model, values)
    for group in violated:
        _emit_conflict_group(layer_model, group)
    return violated


def ensure_fully_separated(layer_model: LayerModel) -> int:
    """Emit every remaining conflict group; returns how many were added.

    Certificates (LP relaxation bounds) are only issued off fully separated
    models — the relaxed model's LP bound would still be valid (fewer rows
    = a relaxation of the full model), but the certificate invariant is
    stated, tested, and documented against the complete encoding.
    """
    remaining = [
        g
        for g in layer_model.conflict_groups
        if (g.a, g.b) not in layer_model.emitted
    ]
    for group in remaining:
        _emit_conflict_group(layer_model, group)
    return len(remaining)


def _delta_structure_token(problem: LayerProblem) -> tuple:
    """What must be unchanged for a delta re-encode to be sound.

    Everything except the numeric transport/release constants: op identity
    and durations (they shape rows, not just numbers — durations appear in
    makespan and tail rows that the delta does not touch), edges, devices,
    slots, cross-layer wiring, and the storage key/weight maps (weights are
    objective coefficients tied to od variables created at build time).
    """
    return (
        problem.layer_index,
        tuple(
            (
                op.uid,
                op.duration.scheduled,
                op.is_indeterminate,
                op.requirement_signature(),
            )
            for op in problem.ops
        ),
        tuple(problem.in_layer_edges),
        tuple((d.uid, d.signature) for d in problem.fixed_devices),
        problem.free_slots,
        tuple(problem.incoming),
        tuple(problem.outgoing),
        tuple(sorted(problem.existing_paths)),
        tuple(sorted(problem.storage_in.items())),
        tuple(sorted(problem.storage_out.items())),
    )


def _dep_rel_pattern(
    problem: LayerProblem, legal_keys: dict[str, list]
) -> list[tuple[str, str, object]]:
    """The ``dep_rel`` rows a problem emits: (parent, child, shared key)."""
    pattern: list[tuple[str, str, object]] = []
    for parent, child in problem.in_layer_edges:
        transport = problem.edge_transport[(parent, child)]
        release = problem.release.get(parent, 0)
        if release <= transport:
            continue
        for key in legal_keys[parent]:
            if key in legal_keys[child]:
                pattern.append((parent, child, key))
    return pattern


def encode_layer_delta(
    layer_model: LayerModel, problem: LayerProblem, spec: SynthesisSpec
):
    """Map a changed :class:`LayerProblem` onto model mutations.

    Returns ``(delta, new_horizon)`` when the change is purely numeric —
    shifted transport/release constants, which move dependency right-hand
    sides, the horizon (variable upper bounds), and every big-M coefficient
    derived from it — or ``None`` when the change is structural (different
    ops/devices/slots/edges/storage), in which case the caller rebuilds.

    The mutated model is element-identical to ``build_layer_model(problem,
    spec)`` restricted to the emitted conflict groups: a delta-solved layer
    is byte-identical to a from-scratch solve.
    """
    from ..ilp.model import ModelDelta

    old = layer_model.problem
    if spec != layer_model.spec:
        return None
    if _delta_structure_token(problem) != _delta_structure_token(old):
        return None
    legal_keys = layer_model.legal_keys
    pattern = _dep_rel_pattern(problem, legal_keys)
    if pattern != _dep_rel_pattern(old, legal_keys):
        return None

    ops = problem.ops
    by_uid = {op.uid: op for op in ops}
    new_horizon = sum(
        op.duration.scheduled + problem.release.get(op.uid, 0) for op in ops
    ) + sum(problem.edge_transport.values()) + 1
    big_m = new_horizon
    horizon_changed = new_horizon != layer_model.horizon

    model = layer_model.model
    od = layer_model.od
    delta = ModelDelta()

    if horizon_changed:
        for var in layer_model.start.values():
            delta.set_variable_bounds(var, ub=new_horizon)
        delta.set_variable_bounds(layer_model.makespan, ub=new_horizon)

    def retarget(name: str, var: Variable, coeff: float) -> None:
        if model.constraint(name).expr.terms.get(var) != coeff:
            delta.set_coefficient(name, var, coeff)

    def move_rhs(name: str, rhs: float) -> None:
        if model.constraint(name).rhs != rhs:
            delta.set_rhs(name, rhs)

    for parent, child in problem.in_layer_edges:
        move_rhs(
            f"dep[{parent}->{child}]",
            by_uid[parent].duration.scheduled
            + problem.edge_transport[(parent, child)],
        )
    for parent, child, key in pattern:
        name = f"dep_rel[{parent}->{child},{key}]"
        retarget(name, od[parent, key], -big_m)
        retarget(name, od[child, key], -big_m)
        move_rhs(
            name,
            by_uid[parent].duration.scheduled
            + problem.release.get(parent, 0)
            - 2 * big_m,
        )

    for group in layer_model.conflict_groups:
        a, b = group.a, group.b
        if (a, b) not in layer_model.emitted or group.kind == "ind":
            continue
        if group.kind == "mixed":
            fixed = group.fixed
            name = f"before_ind[{a},{b}]"
            retarget(name, layer_model.qvars[("q1", a, b)], -big_m)
            move_rhs(
                name,
                -(
                    by_uid[fixed].duration.scheduled
                    + problem.release.get(fixed, 0)
                ),
            )
            continue
        rel_a = problem.release.get(a, 0)
        rel_b = problem.release.get(b, 0)
        name = f"after[{a},{b}]"
        retarget(name, layer_model.qvars[("q0", a, b)], big_m)
        move_rhs(name, by_uid[b].duration.scheduled + rel_b)
        name = f"before[{a},{b}]"
        retarget(name, layer_model.qvars[("q1", a, b)], -big_m)
        move_rhs(name, -(by_uid[a].duration.scheduled + rel_a))

    return delta, new_horizon


def apply_layer_delta(
    layer_model: LayerModel,
    problem: LayerProblem,
    delta,
    new_horizon: int,
    apply: bool = True,
) -> None:
    """Finalize a delta re-encode: swap the problem and horizon in.

    ``apply=False`` skips mutating the model (a solver session already
    applied the delta through its own :meth:`apply`).
    """
    if apply:
        delta.apply_to(layer_model.model)
    layer_model.problem = problem
    layer_model.horizon = new_horizon


def encode_layer_start(
    layer_model: LayerModel, result: "LayerSolveResult"
) -> dict[Variable, float] | None:
    """Encode a decoded layer result as a complete start vector.

    Maps ``result``'s binding/schedule back onto the model's variables —
    fixed devices by uid, new devices onto free slots in order — and derives
    the dependent binaries (configuration one-hots, disjunction escapes,
    path indicators).  Returns ``None`` when the result does not fit this
    model (unknown device, missing slot, or any constraint violated), so
    callers can simply skip an unusable start.
    """
    problem = layer_model.problem
    spec = layer_model.spec
    model = layer_model.model
    by_uid = {op.uid: op for op in problem.ops}

    # -- device uid -> model key ------------------------------------------
    key_of: dict[str, object] = {d.uid: d.uid for d in problem.fixed_devices}
    if len(result.new_devices) > problem.free_slots:
        return None
    for j, device in enumerate(result.new_devices):
        key_of[device.uid] = slot_key(j)

    values: dict[Variable, float] = {}

    # -- slot configuration ------------------------------------------------
    for j in range(problem.free_slots):
        device = result.new_devices[j] if j < len(result.new_devices) else None
        values[layer_model.used[j]] = 1.0 if device is not None else 0.0
        for kind, cap in LEGAL_COMBOS:
            on = device is not None and (device.container, device.capacity) == (
                kind, cap
            )
            values[layer_model.conf[j, kind, cap]] = 1.0 if on else 0.0
        for name in spec.registry.names:
            on = device is not None and name in device.accessories
            values[layer_model.acc[j, name]] = 1.0 if on else 0.0
        for (slot, s), var in layer_model.sig.items():
            if slot != j:
                continue
            values[var] = 1.0 if device is not None and device.signature == s else 0.0

    # -- bindings ----------------------------------------------------------
    chosen_key: dict[str, object] = {}
    for op in problem.ops:
        device_uid = result.binding.get(op.uid)
        if device_uid is None or device_uid not in key_of:
            return None
        chosen_key[op.uid] = key_of[device_uid]
    for (uid, key), var in layer_model.od.items():
        values[var] = 1.0 if chosen_key.get(uid) == key else 0.0
    for uid, key in chosen_key.items():
        if (uid, key) not in layer_model.od:
            return None  # binding not legal in this model

    # -- start times -------------------------------------------------------
    starts: dict[str, int] = {}
    for op in problem.ops:
        if op.uid not in result.schedule:
            return None
        starts[op.uid] = result.schedule[op.uid].start
        values[layer_model.start[op.uid]] = float(starts[op.uid])
    values[layer_model.makespan] = float(result.schedule.makespan)

    # -- disjunction escapes ----------------------------------------------
    def completion(uid: str) -> int:
        op = by_uid[uid]
        return starts[uid] + op.duration.scheduled + problem.release.get(uid, 0)

    for kind, var, a, b in layer_model.disj:
        if kind == "q0":  # relaxes: a starts after b completes (+release)
            values[var] = 0.0 if starts[a] >= completion(b) else 1.0
        elif kind == "q1":  # relaxes: a completes (+release) before b starts
            values[var] = 0.0 if completion(a) <= starts[b] else 1.0
        else:  # q2 permits sharing one device
            values[var] = (
                1.0 if result.binding[a] == result.binding[b] else 0.0
            )

    # -- transportation paths ---------------------------------------------
    used_pairs: set[tuple] = set()

    def note_pair(key_a, key_b) -> None:
        if key_a != key_b:
            used_pairs.add(tuple(sorted((key_a, key_b), key=repr)))

    for parent, child in problem.in_layer_edges:
        note_pair(chosen_key[parent], chosen_key[child])
    for parent_device, child in problem.incoming:
        note_pair(parent_device, chosen_key[child])
    for parent, child_device in problem.outgoing:
        note_pair(chosen_key[parent], child_device)
    for pair, var in layer_model.path_vars.items():
        values[var] = 1.0 if pair in used_pairs else 0.0

    if len(values) != model.num_variables:
        return None  # a variable escaped the encoding; don't guess
    if model.check(values):
        # The binding and relative order may still be fine while the start
        # times are stale (transport refinement between passes shifts the
        # precedence offsets).  Re-derive minimal feasible timing for the
        # chosen binaries before giving up.
        values = _repair_layer_timing(layer_model, values)
        if values is None or model.check(values):
            return None
    if unemitted_violations(layer_model, values):
        # A lazily built model is missing conflict rows; a start that only
        # passes because those rows are absent is not a valid schedule.
        return None
    return values


def _repair_layer_timing(
    layer_model: LayerModel, values: dict[Variable, float]
) -> dict[Variable, float] | None:
    """Recompute start times and makespan for a fixed binary assignment.

    With every binary pinned, the remaining constraints over the timing
    variables are difference constraints (``x - y >= w`` or bounds), so the
    componentwise-minimal feasible timing is a longest-path fixpoint.  The
    binaries — and hence the binding and the relative device order encoded
    by the disjunction escapes — are kept as-is; only the continuous part
    moves.  Returns ``None`` if a constraint does not fit the difference
    form, a bound is violated, or the system has no finite fixpoint.
    """
    model = layer_model.model
    timing = set(layer_model.start.values()) | {layer_model.makespan}
    floor: dict[Variable, float] = {v: max(0.0, v.lb) for v in timing}
    ceil: dict[Variable, float] = {v: v.ub for v in timing}
    #: dst >= src + w  (src None means dst >= w)
    edges: list[tuple[Variable | None, Variable, float]] = []

    for con in model.constraints:
        t_terms = [
            (v, c) for v, c in con.expr.terms.items() if v in timing and c
        ]
        if not t_terms:
            continue
        const = sum(
            c * values[v] for v, c in con.expr.terms.items() if v not in timing
        )
        senses = ("<=", ">=") if con.sense == "==" else (con.sense,)
        for sense in senses:
            terms, rhs = t_terms, con.rhs - const
            if sense == "<=":  # normalize everything to sum >= rhs
                terms = [(v, -c) for v, c in terms]
                rhs = -rhs
            if len(terms) == 1:
                (v, c), = terms
                if c > 0:
                    floor[v] = max(floor[v], rhs / c)
                else:
                    ceil[v] = min(ceil[v], rhs / c)
            elif len(terms) == 2:
                (v1, c1), (v2, c2) = terms
                if c2 > 0 > c1:
                    (v1, c1), (v2, c2) = (v2, c2), (v1, c1)
                if not (c1 > 0 > c2 and abs(c1 + c2) < 1e-9):
                    return None  # not a difference constraint
                edges.append((v2, v1, rhs / c1))
            else:
                return None

    val = dict(floor)
    for _ in range(len(timing) + 1):
        changed = False
        for src, dst, w in edges:
            bound = w if src is None else val[src] + w
            if bound > val[dst] + 1e-9:
                val[dst] = bound
                changed = True
        if not changed:
            break
    else:
        return None  # positive cycle: the chosen order is infeasible

    repaired = dict(values)
    for v in timing:
        t = round(val[v])
        if abs(t - val[v]) > 1e-6:
            t = val[v]  # keep fractional fixpoints verbatim; check() decides
        if t > ceil[v] + 1e-9:
            return None
        repaired[v] = float(t)
    return repaired
