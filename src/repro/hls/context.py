"""Shared state of one synthesis run, threaded through the pass pipeline.

The old driver kept everything in local variables of ``synthesize()``;
pulling it into an explicit :class:`SynthesisContext` lets the pipeline
stages (``hls/pipeline.py``), the scheduler backends (``hls/backends.py``),
and the parallel speculator (``hls/parallel.py``) operate on the same state
without threading a dozen parameters around — and lets callers like the
conventional baseline or contingency re-synthesis inject their own
transport estimator, solve cache, or binding rule up front.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..devices.device import GeneralDevice
from ..layering import LayeringResult
from ..operations.assay import Assay
from .cache import LayerSolveCache
from .decode import LayerSolveResult
from .schedule import HybridSchedule
from .session import SessionPool
from .spec import SynthesisSpec
from .transport import TransportEstimator


class UidAllocator:
    """Deterministic ``d0, d1, ...`` device-uid source.

    Backends draw uids for adopted results only (see ``hls/backends.py``),
    so the counter advances by exactly ``len(result.new_devices)`` per
    layer solve — the property :meth:`clone` relies on to predict the uids
    of speculative solves.
    """

    def __init__(self, start: int = 0) -> None:
        self.counter = start

    def __call__(self) -> str:
        uid = f"d{self.counter}"
        self.counter += 1
        return uid

    def clone(self) -> "UidAllocator":
        return UidAllocator(self.counter)


class PassState:
    """State of one synthesis pass over all layers."""

    def __init__(self) -> None:
        self.devices: dict[str, GeneralDevice] = {}
        self.born: dict[str, int] = {}
        self.results: dict[int, LayerSolveResult] = {}
        self.binding: dict[str, str] = {}
        #: per-edge transportation estimates this pass was built with.
        self.transport_snapshot: dict[tuple[str, str], int] = {}
        #: frozen estimator state matching ``transport_snapshot``.
        self.transport_estimator: TransportEstimator | None = None

    @property
    def fixed_makespan(self) -> int:
        return sum(r.schedule.makespan for r in self.results.values())

    @property
    def all_cache_hits(self) -> bool:
        """True when every layer replayed a cached solve: the pass posed
        exactly the problems of an earlier pass, so iterating further
        cannot change anything."""
        return bool(self.results) and all(
            r.stats is not None and r.stats.cache_hit
            for r in self.results.values()
        )

    def schedule(self) -> HybridSchedule:
        return HybridSchedule(
            layers=[self.results[i].schedule for i in sorted(self.results)]
        )

    def used_devices(self) -> dict[str, GeneralDevice]:
        used = set(self.binding.values())
        return {uid: dev for uid, dev in self.devices.items() if uid in used}

    def clone(self) -> "PassState":
        """Shallow-copy the evolving maps (results/devices are immutable
        enough to share) — used by the speculator to simulate a pass."""
        twin = PassState()
        twin.devices = dict(self.devices)
        twin.born = dict(self.born)
        twin.results = dict(self.results)
        twin.binding = dict(self.binding)
        twin.transport_snapshot = self.transport_snapshot
        twin.transport_estimator = self.transport_estimator
        return twin


def pass_objective(
    state: PassState, assay: Assay, spec: SynthesisSpec
) -> float:
    """A pass's full weighted objective (makespan, area, processing, paths).

    Mirrors the per-layer ILP objective at whole-schedule scope; used to
    rank passes whose fixed makespans tie.
    """
    costs = spec.cost_model
    weights = spec.weights
    devices = state.used_devices().values()
    schedule = state.schedule()
    return (
        weights.time * state.fixed_makespan
        + weights.area * sum(d.area(costs) for d in devices)
        + weights.processing * sum(d.processing_cost(costs) for d in devices)
        + weights.paths * len(schedule.transportation_paths(assay.edges))
    )


def beats(
    candidate: PassState, best: PassState, assay: Assay, spec: SynthesisSpec
) -> bool:
    """Whether ``candidate`` should replace the best pass so far.

    Primary criterion is the fixed makespan; ties are broken on the full
    weighted objective so an equal-makespan pass only wins by actually
    being cheaper (fewer/smaller devices or fewer paths).  A full tie
    keeps the earlier pass.
    """
    if candidate.fixed_makespan != best.fixed_makespan:
        return candidate.fixed_makespan < best.fixed_makespan
    return pass_objective(candidate, assay, spec) < pass_objective(
        best, assay, spec
    )


@dataclass
class SynthesisContext:
    """Everything a synthesis run reads and mutates, in one place.

    Built once by :func:`repro.hls.synthesizer.synthesize` (or directly by
    callers that need to pre-seed pieces: the conventional baseline swaps
    the binding rule via the spec, contingency re-synthesis passes a warm
    cross-run cache) and handed to
    :class:`repro.hls.pipeline.SynthesisPipeline`.
    """

    assay: Assay
    spec: SynthesisSpec
    #: transportation estimator; defaulted from the spec when omitted.
    transport: TransportEstimator | None = None
    #: cross-pass layer-solve cache; defaulted per ``enable_solve_cache``
    #: when omitted (pass an external cache to share across runs).
    cache: LayerSolveCache | None = None
    #: worker processes for re-synthesis layer solves; ``None`` inherits
    #: ``spec.jobs``.
    jobs: int | None = None
    #: per-layer solver sessions, reused across re-synthesis passes;
    #: defaulted per ``spec.enable_solver_sessions`` when omitted.
    sessions: SessionPool | None = None

    # -- populated by the pipeline stages --------------------------------
    layering: LayeringResult | None = None
    history: list = field(default_factory=list)
    current: PassState | None = None
    best: PassState | None = None
    started: float = field(default_factory=time.monotonic)
    uids: UidAllocator = field(default_factory=UidAllocator)

    def __post_init__(self) -> None:
        if self.transport is None:
            self.transport = TransportEstimator(self.assay, self.spec)
        if self.cache is None and self.spec.enable_solve_cache:
            self.cache = LayerSolveCache(
                capacity=self.spec.solve_cache_capacity
            )
        if self.jobs is None:
            self.jobs = self.spec.jobs
        if self.sessions is None and self.spec.enable_solver_sessions:
            self.sessions = SessionPool()
