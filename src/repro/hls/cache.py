"""Cross-pass layer-solve caching for progressive re-synthesis.

The re-synthesis loop (paper Sec. 3.2) repeatedly re-solves every layer's
ILP, but once the transportation estimates and the device inventory stop
changing, consecutive passes pose *identical* per-layer problems — pure
wasted solver time on the Table 2/3 hot path.  This module memoizes decoded
:class:`~repro.hls.decode.LayerSolveResult` objects keyed by a canonical
fingerprint of the :class:`~repro.hls.milp_model.LayerProblem` (plus the
solve-relevant :class:`~repro.hls.spec.SynthesisSpec` fields).

Device uids are *canonicalized* in the fingerprint — fixed devices are
referred to by their position in ``problem.fixed_devices``, new devices by
their slot index — so a hit replays cleanly into the current pass's
inventory even though every pass re-allocates fresh device uids.  Replay
maps the canonical references back onto the current fixed-device uids and
materializes new devices through the caller's uid allocator, making a hit
behaviorally indistinguishable from a deterministic re-solve (same
schedule, same binding structure, same objective) at near-zero cost.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field

from ..devices.device import GeneralDevice
from ..ilp import SolveStats
from ..operations.assay import Assay
from .decode import LayerSolveResult
from .milp_model import LayerProblem
from .schedule import LayerSchedule, OpPlacement
from .spec import SynthesisSpec

#: Canonical reference to a device: ("fixed", index into fixed_devices) or
#: ("new", index into the result's new_devices).
_DeviceRef = tuple[str, int]


def _device_token(device: GeneralDevice) -> tuple:
    """Configuration of a device, independent of its uid."""
    return (
        device.container.value,
        device.capacity.value,
        tuple(sorted(device.accessories)),
        device.signature,
    )


def _spec_token(spec: SynthesisSpec) -> tuple:
    """The spec fields a layer solve depends on.

    Transportation parameters are deliberately absent: their effect is
    already captured through ``edge_transport`` and ``release`` in the
    problem itself.
    """
    weights = spec.weights
    costs = spec.cost_model
    return (
        spec.max_devices,
        spec.binding_mode.value,
        spec.backend,
        spec.scheduler,
        spec.time_limit,
        spec.mip_gap,
        spec.allow_heuristic_fallback,
        spec.enable_warm_start,
        # The warm-start cutoff row steers which within-gap optimum the
        # solver returns, so cutoff and non-cutoff solves must not share
        # cache entries.
        spec.warm_cutoff,
        # Lazy conflict separation converges to conflict-free schedules but
        # may land on a different within-gap optimum than the eager
        # encoding, so the modes must not share cached solves.  Solver
        # sessions are deliberately absent: a session re-assembles the
        # exact standard form a scratch build produces.
        spec.conflict_mode,
        (weights.time, weights.area, weights.processing, weights.paths),
        tuple(sorted((k[0].value, k[1].value, v) for k, v in costs.area.items())),
        tuple(
            sorted(
                (k[0].value, k[1].value, v)
                for k, v in costs.container_processing.items()
            )
        ),
        tuple(sorted(costs.accessory_processing.items())),
        costs.default_accessory_processing,
        tuple(sorted(spec.registry.names)),
        # Storage knobs (extension): modes must never share cached solves
        # or stored run results — the pressure terms change objectives.
        (
            spec.storage_mode,
            spec.storage_capacity,
            (
                spec.storage_weights.hold,
                spec.storage_weights.channel,
                spec.storage_weights.reservoir,
            ),
        ),
    )


def _run_spec_token(spec: SynthesisSpec) -> tuple:
    """Every spec field that can change a whole synthesis run's outcome.

    Extends :func:`_spec_token` (the per-layer-solve fields) with the
    run-level knobs: the layering threshold, the re-synthesis iteration
    policy, and the transportation-estimation parameters.  Fields that
    only change *how fast* an identical result is produced — ``jobs``,
    ``enable_solve_cache``, ``solve_cache_capacity`` — are deliberately
    excluded.
    """
    progression = spec.transport_progression
    return (
        _spec_token(spec),
        spec.threshold,
        spec.max_iterations,
        spec.improvement_threshold,
        spec.transport_default,
        (progression.minimum, progression.maximum, progression.terms),
        # Throughput knobs (extension): they never change the one-shot
        # synthesis result, but they do change what a *job* produces (the
        # periodic payload block), so runs must not share fingerprints
        # across modes.
        (
            spec.throughput_mode,
            spec.target_ii,
            spec.throughput_scheduler,
            spec.throughput_variants,
        ),
    )


def _assay_token(assay: Assay) -> tuple:
    """Canonical content token of an assay (name excluded)."""
    ops_token = tuple(
        (
            op.uid,
            op.duration.minimum,
            op.is_indeterminate,
            op.capacity.value,
            op.container.value if op.container else None,
            tuple(sorted(op.accessories)),
            op.function,
        )
        for op in sorted(assay, key=lambda op: op.uid)
    )
    edges_token = tuple(sorted(assay.edges))
    return (ops_token, edges_token)


def fingerprint_run(
    assay: Assay, spec: SynthesisSpec, method: str = "hls"
) -> str:
    """Canonical fingerprint of one whole synthesis run's input.

    Two invocations with the same assay content, the same solve-relevant
    spec fields, and the same ``method`` ("hls" or "conventional") pose
    the identical synthesis problem — the addressing key of the service
    result store (:mod:`repro.service.store`) and of request coalescing
    (:mod:`repro.service.queue`).  The assay *name* is excluded: renaming
    an assay does not change its synthesis.
    """
    payload = ("synthesis-run-v1", method, _assay_token(assay),
               _run_spec_token(spec))
    return hashlib.sha256(repr(payload).encode()).hexdigest()


def fingerprint_layer_problem(problem: LayerProblem, spec: SynthesisSpec) -> str:
    """Canonical fingerprint of one layer solve's complete input.

    Covers the ops (durations, component requirements, indeterminacy), the
    in-layer dependency structure with its transportation estimates, release
    margins, the *configurations* of the inherited devices, the free-slot
    budget, cross-layer device bindings (incoming/outgoing), the already-paid
    transportation paths, and the solve-relevant spec fields.  Fixed-device
    uids are replaced by their list position, so renaming the inventory
    between passes does not break matching.
    """
    canon = {d.uid: i for i, d in enumerate(problem.fixed_devices)}

    def canon_uid(uid: str):
        # Unknown uids (never the case for well-formed problems) degrade to
        # the raw string: correct, merely less shareable.
        return canon.get(uid, uid)

    ops_token = tuple(
        (
            op.uid,
            op.duration.scheduled,
            op.is_indeterminate,
            op.requirement_signature(),
        )
        for op in problem.ops
    )
    edges_token = tuple(
        sorted(
            (parent, child, problem.edge_transport[(parent, child)])
            for parent, child in problem.in_layer_edges
        )
    )
    release_token = tuple(sorted(problem.release.items()))
    devices_token = tuple(_device_token(d) for d in problem.fixed_devices)
    incoming_token = tuple(
        sorted((canon_uid(parent), child) for parent, child in problem.incoming)
    )
    outgoing_token = tuple(
        sorted((parent, canon_uid(child)) for parent, child in problem.outgoing)
    )
    paths_token = tuple(
        sorted(
            tuple(sorted((canon_uid(a), canon_uid(b)), key=repr))
            for a, b in problem.existing_paths
        )
    )
    storage_token = (
        tuple(
            sorted(
                (canon_uid(dev), child, weight)
                for (dev, child), weight in problem.storage_in.items()
            )
        ),
        tuple(
            sorted(
                (parent, canon_uid(dev), weight)
                for (parent, dev), weight in problem.storage_out.items()
            )
        ),
    )
    payload = (
        "layer-solve-v1",
        problem.layer_index,
        ops_token,
        edges_token,
        release_token,
        devices_token,
        problem.free_slots,
        incoming_token,
        outgoing_token,
        paths_token,
        storage_token,
        _spec_token(spec),
    )
    return hashlib.sha256(repr(payload).encode()).hexdigest()


def strict_fingerprint_layer_problem(
    problem: LayerProblem, spec: SynthesisSpec
) -> str:
    """Fingerprint with *raw* device uids (no canonicalization).

    The layer ILP's structure is not uid-independent — the model sorts
    device pairs by uid ``repr`` when laying out path variables — so two
    problems that match canonically can still build (slightly) different
    models.  Parallel speculation therefore gates replay on this stricter
    key: equality here means the predicted problem *is* the actual problem,
    byte for byte, and the worker's solve is exactly the solve the
    sequential driver would have run.
    """
    ops_token = tuple(
        (
            op.uid,
            op.duration.scheduled,
            op.is_indeterminate,
            op.requirement_signature(),
        )
        for op in problem.ops
    )
    edges_token = tuple(
        sorted(
            (parent, child, problem.edge_transport[(parent, child)])
            for parent, child in problem.in_layer_edges
        )
    )
    devices_token = tuple(
        (d.uid, _device_token(d)) for d in problem.fixed_devices
    )
    payload = (
        "layer-solve-strict-v1",
        problem.layer_index,
        ops_token,
        edges_token,
        tuple(sorted(problem.release.items())),
        devices_token,
        problem.free_slots,
        tuple(sorted(problem.incoming)),
        tuple(sorted(problem.outgoing)),
        tuple(sorted(problem.existing_paths)),
        (
            tuple(sorted(problem.storage_in.items())),
            tuple(sorted(problem.storage_out.items())),
        ),
        _spec_token(spec),
    )
    return hashlib.sha256(repr(payload).encode()).hexdigest()


def structural_fingerprint_layer_problem(
    problem: LayerProblem, spec: SynthesisSpec
) -> str:
    """Fingerprint of a layer problem's *structure* — everything except the
    transportation estimates and release margins.

    This is the session-pool key (:mod:`repro.hls.session`): two problems
    that match structurally build models with identical variables and rows
    whose only differences are coefficient/rhs/bound *values* derived from
    ``edge_transport`` and ``release`` — exactly what
    :func:`repro.hls.milp_model.encode_layer_delta` can patch in place.
    Raw device uids are used (like the strict fingerprint) because the
    model's variable layout depends on them.
    """
    ops_token = tuple(
        (
            op.uid,
            op.duration.scheduled,
            op.is_indeterminate,
            op.requirement_signature(),
        )
        for op in problem.ops
    )
    devices_token = tuple(
        (d.uid, _device_token(d)) for d in problem.fixed_devices
    )
    payload = (
        "layer-session-v1",
        problem.layer_index,
        ops_token,
        tuple(sorted(problem.in_layer_edges)),
        devices_token,
        problem.free_slots,
        tuple(sorted(problem.incoming)),
        tuple(sorted(problem.outgoing)),
        tuple(sorted(problem.existing_paths)),
        (
            tuple(sorted(problem.storage_in.items())),
            tuple(sorted(problem.storage_out.items())),
        ),
        _spec_token(spec),
    )
    return hashlib.sha256(repr(payload).encode()).hexdigest()


@dataclass(frozen=True)
class _CachedPlacement:
    uid: str
    device: _DeviceRef
    start: int
    duration: int
    indeterminate: bool


@dataclass(frozen=True)
class _CachedSolve:
    """A decoded layer result with all device uids canonicalized.

    Also the wire format parallel workers ship results back in — it is a
    small, picklable value with no uid state, so the parent process can
    materialize it through its own allocator exactly like a cache replay.
    """

    placements: tuple[_CachedPlacement, ...]
    new_devices: tuple[tuple, ...]  # _device_token per new device
    objective: float
    solver_status: str
    solver_runtime: float
    backend: str
    #: certified lower bound on the layer objective, carried across replays
    #: so a cache hit keeps its quality certificate (None = uncertified).
    #: Defaulted for pickle-compat with entries exported by older builds.
    lower_bound: float | None = None


def encode_layer_result(
    problem: LayerProblem, result: LayerSolveResult
) -> _CachedSolve | None:
    """Canonicalize ``result`` against ``problem`` (uids → positions).

    Returns ``None`` when the result references devices outside the
    problem or skips one of its ops — never the case for a well-formed
    solve.
    """
    fixed_index = {d.uid: i for i, d in enumerate(problem.fixed_devices)}
    new_index = {d.uid: j for j, d in enumerate(result.new_devices)}

    placements = []
    for op in problem.ops:
        if op.uid not in result.schedule:
            return None
        placement = result.schedule[op.uid]
        uid = placement.device_uid
        if uid in new_index:
            ref: _DeviceRef = ("new", new_index[uid])
        elif uid in fixed_index:
            ref = ("fixed", fixed_index[uid])
        else:
            return None
        placements.append(
            _CachedPlacement(
                uid=op.uid,
                device=ref,
                start=placement.start,
                duration=placement.duration,
                indeterminate=placement.indeterminate,
            )
        )

    return _CachedSolve(
        placements=tuple(placements),
        new_devices=tuple(_device_token(d) for d in result.new_devices),
        objective=result.objective,
        solver_status=result.solver_status,
        solver_runtime=result.solver_runtime,
        backend=result.stats.backend if result.stats else "",
        lower_bound=result.stats.lower_bound if result.stats else None,
    )


def materialize_layer_result(
    entry: _CachedSolve, problem: LayerProblem, allocate_uid
) -> LayerSolveResult:
    """Replay an encoded solve into the current pass (no stats attached).

    New devices are materialized with fresh uids from ``allocate_uid``;
    fixed-device references resolve to the problem's current inventory.
    """
    from ..components.containers import Capacity, ContainerKind

    new_devices = [
        GeneralDevice(
            uid=allocate_uid(),
            container=ContainerKind(container),
            capacity=Capacity(capacity),
            accessories=frozenset(accessories),
            signature=signature,
        )
        for container, capacity, accessories, signature in entry.new_devices
    ]
    schedule = LayerSchedule(index=problem.layer_index)
    binding: dict[str, str] = {}
    for cached in entry.placements:
        kind, index = cached.device
        device_uid = (
            new_devices[index].uid
            if kind == "new"
            else problem.fixed_devices[index].uid
        )
        binding[cached.uid] = device_uid
        schedule.place(
            OpPlacement(
                uid=cached.uid,
                device_uid=device_uid,
                start=cached.start,
                duration=cached.duration,
                indeterminate=cached.indeterminate,
            )
        )
    return LayerSolveResult(
        schedule=schedule,
        binding=binding,
        new_devices=new_devices,
        objective=entry.objective,
        solver_status=entry.solver_status,
        solver_runtime=0.0,
    )


@dataclass
class LayerSolveCache:
    """Memoizes decoded layer results across re-synthesis passes.

    ``capacity`` bounds the entry count with least-recently-used eviction
    (``None`` = unbounded).  A long-lived process — the synthesis service,
    a Monte-Carlo campaign with contingency re-synthesis — would otherwise
    accumulate one entry per distinct layer problem forever.
    """

    capacity: int | None = None
    _entries: dict[str, _CachedSolve] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def __len__(self) -> int:
        return len(self._entries)

    def counters(self) -> dict[str, int]:
        """Hit/miss/eviction telemetry plus the current size and bound."""
        return {
            "entries": len(self._entries),
            "capacity": self.capacity if self.capacity is not None else 0,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def _touch(self, key: str) -> None:
        # dicts preserve insertion order; re-inserting moves the key to the
        # most-recently-used end.
        entry = self._entries.pop(key)
        self._entries[key] = entry

    def _insert(self, key: str, entry: _CachedSolve) -> None:
        self._entries.pop(key, None)
        self._entries[key] = entry
        if self.capacity is None:
            return
        while len(self._entries) > max(1, self.capacity):
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self.evictions += 1

    def store(
        self, problem: LayerProblem, spec: SynthesisSpec, result: LayerSolveResult
    ) -> None:
        """Record ``result`` under ``problem``'s fingerprint.

        Results that reference devices outside the problem (never produced
        by a well-formed solve) are silently not cached.
        """
        entry = encode_layer_result(problem, result)
        if entry is None:
            return
        self._insert(fingerprint_layer_problem(problem, spec), entry)

    def contains(self, problem: LayerProblem, spec: SynthesisSpec) -> bool:
        """Whether a replay would hit, without touching the counters."""
        return fingerprint_layer_problem(problem, spec) in self._entries

    def entry(
        self, problem: LayerProblem, spec: SynthesisSpec
    ) -> _CachedSolve | None:
        """The raw encoded solve for ``problem``, without touching the
        hit/miss counters.

        Used by the parallel speculator to simulate the replay the
        sequential driver would perform (and to skip dispatching a worker
        for it).
        """
        return self._entries.get(fingerprint_layer_problem(problem, spec))

    def lookup(
        self, problem: LayerProblem, spec: SynthesisSpec, allocate_uid
    ) -> LayerSolveResult | None:
        """Replay a cached result into the current pass, if one matches.

        New devices are materialized with fresh uids from ``allocate_uid``;
        fixed-device references resolve to the problem's current inventory.
        """
        started = time.monotonic()
        key = fingerprint_layer_problem(problem, spec)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._touch(key)

        result = materialize_layer_result(entry, problem, allocate_uid)
        result.stats = SolveStats(
            layer=problem.layer_index,
            backend=entry.backend,
            status=entry.solver_status,
            build_time=time.monotonic() - started,
            solve_time=0.0,
            cache_hit=True,
        )
        # A hit poses the identical layer problem (same fingerprint), so
        # the original solve's certificate transfers to the replay as-is.
        from .backends import _certify

        _certify(result.stats, result, problem, spec, entry.lower_bound)
        return result

    def export_entries(
        self, limit: int | None = None
    ) -> list[tuple[str, _CachedSolve]]:
        """The cache's contents as a picklable ``(fingerprint, entry)`` list.

        Most-recently-used entries come *last*, so a size-limited export
        keeps the hottest ``limit`` entries.  Entries are canonical (no
        process-local uid state), which is what makes shipping them to
        another process sound: :meth:`import_entries` replays them exactly
        like same-process hits.
        """
        items = list(self._entries.items())
        if limit is not None and limit >= 0:
            items = items[-limit:] if limit else []
        return items

    def import_entries(self, entries) -> int:
        """Merge exported entries (see :meth:`export_entries`); returns the
        number of *new* fingerprints added.  Existing entries are refreshed
        to most-recently-used but not overwritten — the local copy is
        already the same canonical solve."""
        added = 0
        for key, entry in entries:
            if key in self._entries:
                self._touch(key)
                continue
            self._insert(key, entry)
            added += 1
        return added
