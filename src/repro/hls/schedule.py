"""Schedule data structures.

A :class:`HybridSchedule` is the paper's synthesis output: a sequence of
per-layer *sub-schedules*, each fully fixed, joined by real-time decision
points.  The makespan is partly symbolic: every layer with indeterminate
operations contributes an ``I_k`` term for the (unknowable) time its
indeterminate tail runs beyond the scheduled minimum — exactly the
``277m + I_1`` notation of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SchedulingError
from ..units import format_minutes


@dataclass(frozen=True)
class OpPlacement:
    """One operation's slot in a layer's sub-schedule.

    ``start`` is relative to the layer's own time origin; ``duration`` is the
    scheduled duration (the minimum for indeterminate operations).
    """

    uid: str
    device_uid: str
    start: int
    duration: int
    indeterminate: bool = False

    @property
    def end(self) -> int:
        """Scheduled completion (minimum completion when indeterminate)."""
        return self.start + self.duration

    def __post_init__(self) -> None:
        if self.start < 0:
            raise SchedulingError(f"{self.uid}: negative start {self.start}")
        if self.duration <= 0:
            raise SchedulingError(f"{self.uid}: non-positive duration")


@dataclass
class LayerSchedule:
    """The fixed sub-schedule of one layer."""

    index: int
    placements: dict[str, OpPlacement] = field(default_factory=dict)

    def place(self, placement: OpPlacement) -> None:
        if placement.uid in self.placements:
            raise SchedulingError(f"{placement.uid} placed twice")
        self.placements[placement.uid] = placement

    def __getitem__(self, uid: str) -> OpPlacement:
        try:
            return self.placements[uid]
        except KeyError:
            raise SchedulingError(
                f"operation {uid!r} not in layer {self.index}"
            ) from None

    def __contains__(self, uid: str) -> bool:
        return uid in self.placements

    def __len__(self) -> int:
        return len(self.placements)

    @property
    def makespan(self) -> int:
        """Fixed part of the layer's duration (``sum_t`` of the layer ILP)."""
        return max((p.end for p in self.placements.values()), default=0)

    @property
    def indeterminate_uids(self) -> list[str]:
        return [p.uid for p in self.placements.values() if p.indeterminate]

    @property
    def has_indeterminate(self) -> bool:
        return any(p.indeterminate for p in self.placements.values())

    def on_device(self, device_uid: str) -> list[OpPlacement]:
        """Placements bound to ``device_uid``, ordered by start."""
        return sorted(
            (p for p in self.placements.values() if p.device_uid == device_uid),
            key=lambda p: (p.start, p.uid),
        )


@dataclass
class HybridSchedule:
    """Sequential layer sub-schedules plus the symbolic makespan."""

    layers: list[LayerSchedule] = field(default_factory=list)

    def layer(self, index: int) -> LayerSchedule:
        return self.layers[index]

    def find(self, uid: str) -> tuple[int, OpPlacement]:
        """Locate an operation; returns (layer index, placement)."""
        for layer in self.layers:
            if uid in layer:
                return layer.index, layer[uid]
        raise SchedulingError(f"operation {uid!r} not scheduled")

    @property
    def binding(self) -> dict[str, str]:
        """Complete operation→device map across all layers."""
        out: dict[str, str] = {}
        for layer in self.layers:
            for uid, placement in layer.placements.items():
                out[uid] = placement.device_uid
        return out

    @property
    def fixed_makespan(self) -> int:
        """Sum of the layers' fixed sub-schedule durations."""
        return sum(layer.makespan for layer in self.layers)

    @property
    def indeterminate_terms(self) -> list[int]:
        """Indices (1-based, as the paper numbers them) of layers that
        contribute a symbolic ``I_k`` tail."""
        return [
            k + 1 for k, layer in enumerate(self.layers) if layer.has_indeterminate
        ]

    def makespan_expression(self) -> str:
        """The paper's makespan notation, e.g. ``"492m+I_1+I_2"``."""
        expr = format_minutes(self.fixed_makespan)
        for term in self.indeterminate_terms:
            expr += f"+I_{term}"
        return expr

    def used_devices(self) -> set[str]:
        """Device uids that execute at least one operation."""
        return {
            p.device_uid for layer in self.layers for p in layer.placements.values()
        }

    def transportation_paths(self, edges: list[tuple[str, str]]) -> set[tuple[str, str]]:
        """Unordered device pairs connected by at least one dependency edge.

        This is the paper's ``sum_p``: a flow-channel path must exist between
        the devices of every sequential operation pair bound apart.
        """
        binding = self.binding
        paths: set[tuple[str, str]] = set()
        for parent, child in edges:
            a, b = binding[parent], binding[child]
            if a != b:
                paths.add((a, b) if a <= b else (b, a))
        return paths

    def global_start(self, uid: str) -> tuple[int, int]:
        """Start of ``uid`` as (fixed offset, #I-terms before it).

        The fixed offset sums the makespans of all earlier layers plus the
        in-layer start; the second component counts how many indeterminate
        tails (unknown extras) precede it.
        """
        layer_index, placement = self.find(uid)
        offset = sum(l.makespan for l in self.layers[:layer_index])
        terms = sum(
            1 for l in self.layers[:layer_index] if l.has_indeterminate
        )
        return offset + placement.start, terms

    def __repr__(self) -> str:
        return (
            f"HybridSchedule(layers={len(self.layers)}, "
            f"makespan={self.makespan_expression()})"
        )
