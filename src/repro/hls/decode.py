"""Decode an ILP solution into a layer sub-schedule + new devices."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..devices.device import BindingMode, GeneralDevice
from ..errors import SolverError
from ..ilp import Solution, SolveStats
from .milp_model import LEGAL_COMBOS, LayerModel, is_slot
from .schedule import LayerSchedule, OpPlacement


@dataclass
class LayerSolveResult:
    """Decoded outcome of one layer solve."""

    schedule: LayerSchedule
    #: operation uid -> device uid (fixed devices and new devices alike).
    binding: dict[str, str]
    #: devices newly integrated by this layer, in slot order.
    new_devices: list[GeneralDevice] = field(default_factory=list)
    objective: float = 0.0
    solver_status: str = ""
    solver_runtime: float = 0.0
    #: solve telemetry, filled in by the synthesis driver.
    stats: SolveStats | None = None


def decode_layer_solution(
    layer_model: LayerModel,
    solution: Solution,
    uid_allocator,
) -> LayerSolveResult:
    """Translate solver values into placements and concrete new devices.

    ``uid_allocator`` is a zero-argument callable handing out fresh device
    uids (the synthesizer passes the inventory's allocator so uids stay
    globally unique).
    """
    if not solution.status.has_solution:
        raise SolverError(
            f"cannot decode a solution with status {solution.status}"
        )
    problem = layer_model.problem
    mode = layer_model.spec.binding_mode

    # -- materialize used slots as devices --------------------------------
    slot_devices: dict[int, GeneralDevice] = {}
    new_devices: list[GeneralDevice] = []
    for j in range(problem.free_slots):
        if solution.int_value(layer_model.used[j]) == 0:
            continue
        combo = next(
            (
                (kind, cap)
                for kind, cap in LEGAL_COMBOS
                if solution.int_value(layer_model.conf[j, kind, cap]) == 1
            ),
            None,
        )
        if combo is None:
            raise SolverError(f"slot {j} used but has no configuration")
        accessories = frozenset(
            name
            for (slot, name), var in layer_model.acc.items()
            if slot == j and solution.int_value(var) == 1
        )
        signature = None
        if mode is BindingMode.EXACT:
            signature = next(
                (
                    s
                    for (slot, s), var in layer_model.sig.items()
                    if slot == j and solution.int_value(var) == 1
                ),
                None,
            )
        device = GeneralDevice(
            uid=uid_allocator(),
            container=combo[0],
            capacity=combo[1],
            accessories=accessories,
            signature=signature,
        )
        slot_devices[j] = device
        new_devices.append(device)

    # -- placements ----------------------------------------------------------
    schedule = LayerSchedule(index=problem.layer_index)
    binding: dict[str, str] = {}
    for op in problem.ops:
        chosen = [
            key
            for (uid, key), var in layer_model.od.items()
            if uid == op.uid and solution.int_value(var) == 1
        ]
        if len(chosen) != 1:
            raise SolverError(
                f"operation {op.uid} bound to {len(chosen)} devices"
            )
        key = chosen[0]
        if is_slot(key):
            device_uid = slot_devices[key[1]].uid
        else:
            device_uid = key
        binding[op.uid] = device_uid
        schedule.place(
            OpPlacement(
                uid=op.uid,
                device_uid=device_uid,
                start=solution.int_value(layer_model.start[op.uid]),
                duration=op.duration.scheduled,
                indeterminate=op.is_indeterminate,
            )
        )

    return LayerSolveResult(
        schedule=schedule,
        binding=binding,
        new_devices=new_devices,
        objective=solution.objective or 0.0,
        solver_status=solution.status.value,
        solver_runtime=solution.runtime,
    )
