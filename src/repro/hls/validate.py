"""Independent validation of a synthesis result.

Replays every constraint of the paper's model on the *decoded* result —
deliberately sharing no code with the ILP construction — so a bug in the
model or decoder cannot hide behind itself.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover
    from .synthesizer import SynthesisResult


def collect_violations(result: "SynthesisResult") -> list[str]:
    """All constraint violations in ``result`` (empty = valid)."""
    violations: list[str] = []
    assay = result.assay
    spec = result.spec
    schedule = result.schedule
    layering = result.layering
    edge_t = result.edge_transport

    def edge_time(parent: str, child: str) -> int:
        return edge_t.get((parent, child), 0)

    def release_time(uid: str, within: set[str]) -> int:
        return max(
            (edge_t.get((uid, c), 0) for c in assay.children(uid) if c in within),
            default=0,
        )

    # -- completeness -------------------------------------------------------
    placed: dict[str, int] = {}
    for layer in schedule.layers:
        for uid in layer.placements:
            if uid in placed:
                violations.append(f"{uid} placed in layers {placed[uid]} and {layer.index}")
            placed[uid] = layer.index
    for uid in assay.uids:
        if uid not in placed:
            violations.append(f"{uid} never placed")
        elif layering.layer_of[uid] != placed[uid]:
            violations.append(
                f"{uid} placed in layer {placed[uid]}, "
                f"layering assigned {layering.layer_of[uid]}"
            )
    if violations:
        return violations  # downstream checks assume completeness

    # -- binding legality & device cap -------------------------------------
    if len(result.devices) > spec.max_devices:
        violations.append(
            f"{len(result.devices)} devices exceed |D|={spec.max_devices}"
        )
    for layer in schedule.layers:
        for uid, placement in layer.placements.items():
            device = result.devices.get(placement.device_uid)
            if device is None:
                violations.append(
                    f"{uid} bound to unknown device {placement.device_uid}"
                )
                continue
            if not device.can_execute(assay[uid], spec.binding_mode):
                violations.append(
                    f"{uid} illegally bound to {device} "
                    f"(mode={spec.binding_mode.value})"
                )

    # -- dependencies ((9)) ---------------------------------------------------
    for parent, child in assay.edges:
        lp, lc = placed[parent], placed[child]
        if lp > lc:
            violations.append(f"dependency {parent}->{child} goes backwards")
            continue
        if lp == lc:
            p = schedule.layer(lp)[parent]
            c = schedule.layer(lc)[child]
            needed = edge_time(parent, child)
            if c.start < p.end + needed:
                violations.append(
                    f"{child} starts at {c.start} < {parent} end {p.end} "
                    f"+ transport {needed}"
                )

    # -- device exclusivity ((10)-(13)) -----------------------------------------
    for layer in schedule.layers:
        uids = set(layer.placements)
        by_device: dict[str, list] = {}
        for placement in layer.placements.values():
            by_device.setdefault(placement.device_uid, []).append(placement)
        for device_uid, placements in by_device.items():
            spans = []
            for p in placements:
                release = release_time(p.uid, within=uids)
                end = float("inf") if p.indeterminate else p.end + release
                spans.append((p.start, end, p.uid, p.indeterminate))
            spans.sort(key=lambda s: (s[0], s[1]))
            for (s1, e1, u1, _i1), (s2, e2, u2, _i2) in zip(spans, spans[1:]):
                if s2 < e1:
                    violations.append(
                        f"device {device_uid}: {u1} [{s1},{e1}) overlaps "
                        f"{u2} [{s2},{e2})"
                    )

    # -- indeterminate rules ((14) + parallel tail) -----------------------------
    for layer in schedule.layers:
        ind = [p for p in layer.placements.values() if p.indeterminate]
        if not ind:
            continue
        latest_start = max(p.start for p in layer.placements.values())
        for p in ind:
            if latest_start > p.end:
                violations.append(
                    f"layer {layer.index}: some op starts at {latest_start} "
                    f"after indeterminate {p.uid} minimum completion {p.end}"
                )
        devices = [p.device_uid for p in ind]
        if len(set(devices)) != len(devices):
            violations.append(
                f"layer {layer.index}: indeterminate ops share a device"
            )
        for p in ind:
            same_layer_children = set(assay.children(p.uid)) & set(
                layer.placements
            )
            if same_layer_children:
                violations.append(
                    f"indeterminate {p.uid} has same-layer children "
                    f"{sorted(same_layer_children)}"
                )

    # -- paths consistency ----------------------------------------------------
    recomputed = schedule.transportation_paths(assay.edges)
    if recomputed != result.paths:
        violations.append(
            f"paths mismatch: recorded {sorted(result.paths)} vs "
            f"recomputed {sorted(recomputed)}"
        )

    return violations


def validate_result(result: "SynthesisResult") -> None:
    """Raise :class:`ValidationError` listing every violation, if any."""
    violations = collect_violations(result)
    if violations:
        raise ValidationError(
            f"{len(violations)} violation(s):\n  " + "\n  ".join(violations)
        )
