"""Scheduler backends: pluggable strategies for one layer solve.

Extracted from the old monolithic ``synthesizer._solve_layer`` so the
per-layer solve is a first-class, isolated stage (and so parallel workers
in :mod:`repro.hls.parallel` can run one without dragging the whole driver
along).  A :class:`SchedulerBackend` turns a
:class:`~repro.hls.milp_model.LayerProblem` into a
:class:`~repro.hls.decode.LayerSolveResult`:

* ``ilp-highs`` / ``ilp-bnb`` — the layer ILP on a pinned solver backend;
* ``greedy`` — the list-scheduling heuristic alone;
* ``portfolio`` (default) — the paper flow: ILP with warm start, raced
  against previous-pass reuse and the greedy schedule on
  :func:`layer_cost`, with the seed's fallback ladder.

Uid discipline: backends allocate device uids for *the returned result
only* (never for discarded race candidates), so the caller's allocator
advances by exactly ``len(result.new_devices)`` per solve.  That invariant
is what makes parallel speculation's uid prediction exact — see
``hls/parallel.py``.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import TYPE_CHECKING, Callable, Protocol

from ..errors import InfeasibleError, ReproError, SchedulingError, SolverError
from ..ilp import Solution, SolveStats, SolveStatus
from .decode import LayerSolveResult, decode_layer_solution
from .heuristic import schedule_layer_greedy
from .milp_model import LayerProblem, build_layer_model, encode_layer_start
from .schedule import LayerSchedule
from .transport import path_key

if TYPE_CHECKING:
    from .spec import SynthesisSpec


def layer_cost(
    result: LayerSolveResult, problem: LayerProblem, spec: "SynthesisSpec"
) -> float:
    """Evaluate a decoded layer result under the layer ILP's objective.

    Used to compare the ILP incumbent against the greedy fallback on equal
    terms: weighted makespan + cost of newly integrated devices + newly
    created transportation paths.
    """
    costs = spec.cost_model
    weights = spec.weights
    area = sum(d.area(costs) for d in result.new_devices)
    processing = sum(d.processing_cost(costs) for d in result.new_devices)

    new_paths: set[tuple[str, str]] = set()

    def note(dev_a: str, dev_b: str) -> None:
        if dev_a != dev_b:
            pair = path_key(dev_a, dev_b)
            if pair not in problem.existing_paths:
                new_paths.add(pair)

    for parent, child in problem.in_layer_edges:
        note(result.binding[parent], result.binding[child])
    for parent_device, child in problem.incoming:
        note(parent_device, result.binding[child])
    for parent, child_device in problem.outgoing:
        note(result.binding[parent], child_device)

    return (
        weights.time * result.schedule.makespan
        + weights.area * area
        + weights.processing * processing
        + weights.paths * len(new_paths)
    )


def _candidate_allocator() -> Callable[[], str]:
    """Uid source for race candidates; winners are renamed by the caller."""
    counter = [0]

    def allocate() -> str:
        uid = f"cand#{counter[0]}"
        counter[0] += 1
        return uid

    return allocate


def rename_new_devices(
    result: LayerSolveResult, allocate_uid: Callable[[], str]
) -> LayerSolveResult:
    """Re-issue the result's new-device uids from ``allocate_uid``.

    Draws exactly ``len(result.new_devices)`` uids, in new-device order, and
    rewrites the binding and schedule accordingly.  Fixed-device references
    are untouched.
    """
    if not result.new_devices:
        return result
    mapping = {d.uid: allocate_uid() for d in result.new_devices}
    new_devices = [replace(d, uid=mapping[d.uid]) for d in result.new_devices]
    binding = {
        op: mapping.get(dev, dev) for op, dev in result.binding.items()
    }
    schedule = LayerSchedule(index=result.schedule.index)
    for placement in result.schedule.placements.values():
        schedule.place(
            replace(
                placement,
                device_uid=mapping.get(
                    placement.device_uid, placement.device_uid
                ),
            )
        )
    return replace(
        result, binding=binding, schedule=schedule, new_devices=new_devices
    )


class SchedulerBackend(Protocol):
    """One strategy for solving a single layer.

    ``solve`` must draw uids for the returned result's new devices (and
    nothing else) from ``allocate_uid``; ``warm_from`` is the previous
    pass's result for this layer, already rebased onto the problem's fixed
    devices, or ``None``.
    """

    name: str

    def solve(
        self,
        problem: LayerProblem,
        spec: "SynthesisSpec",
        allocate_uid: Callable[[], str],
        warm_from: LayerSolveResult | None = None,
    ) -> LayerSolveResult: ...


class GreedyBackend:
    """The list-scheduling heuristic alone (always feasible, never optimal)."""

    name = "greedy"

    def solve(
        self,
        problem: LayerProblem,
        spec: "SynthesisSpec",
        allocate_uid: Callable[[], str],
        warm_from: LayerSolveResult | None = None,
    ) -> LayerSolveResult:
        build_started = time.monotonic()
        try:
            result = schedule_layer_greedy(problem, spec, allocate_uid)
        except SchedulingError as exc:
            raise SolverError(
                f"layer {problem.layer_index}: greedy scheduler failed: {exc}"
            ) from exc
        result.stats = SolveStats(
            layer=problem.layer_index,
            backend="heuristic",
            status=result.solver_status,
            build_time=time.monotonic() - build_started,
        )
        return result


class IlpBackend:
    """The layer ILP on one pinned solver backend, no fallback race."""

    def __init__(self, solver: str) -> None:
        self.solver = solver
        self.name = f"ilp-{solver}"

    def solve(
        self,
        problem: LayerProblem,
        spec: "SynthesisSpec",
        allocate_uid: Callable[[], str],
        warm_from: LayerSolveResult | None = None,
    ) -> LayerSolveResult:
        build_started = time.monotonic()
        layer_model = build_layer_model(problem, spec)
        warm_start = None
        if spec.enable_warm_start and warm_from is not None:
            warm_start = encode_layer_start(layer_model, warm_from)
        build_time = time.monotonic() - build_started
        solution = layer_model.model.solve(
            backend=self.solver,
            time_limit=spec.time_limit,
            mip_gap=spec.mip_gap,
            warm_start=warm_start,
        )
        if solution.status.has_solution:
            result = decode_layer_solution(layer_model, solution, allocate_uid)
            base = solution.stats
            result.stats = SolveStats(
                layer=problem.layer_index,
                backend=base.backend if base else self.solver,
                status=result.solver_status,
                nodes=base.nodes if base else 0,
                simplex_iterations=base.simplex_iterations if base else 0,
                build_time=build_time,
                solve_time=base.solve_time if base else 0.0,
                warm_started=base.warm_started if base else False,
            )
            return result
        if solution.status is SolveStatus.INFEASIBLE:
            raise InfeasibleError(
                f"layer {problem.layer_index} is infeasible under |D|="
                f"{spec.max_devices}"
            )
        raise SolverError(
            f"layer {problem.layer_index}: no solution within "
            f"{spec.time_limit}s on backend {self.name!r}"
        )


class PortfolioBackend:
    """ILP, greedy, and previous-pass reuse race (the paper flow).

    The greedy list scheduler is cheap and always feasible, so it doubles
    as both a fallback (when the ILP finds no incumbent in time) and a
    quality floor (when the ILP's time-limited incumbent is poor).

    ``warm_from`` serves two roles: it seeds the ILP with an incumbent on
    backends that accept one (greedy is the backstop start), and — because
    the HiGHS wrapper cannot inject incumbents — it re-enters the race as a
    candidate whenever it is still feasible for the current problem, so a
    time-limited re-solve can never regress below what the previous pass
    already achieved.  That floor is also what lets re-synthesis converge:
    a reused solution keeps the binding stable, which keeps the transport
    estimates stable, which lets the next pass hit the solve cache.
    """

    name = "portfolio"

    def solve(
        self,
        problem: LayerProblem,
        spec: "SynthesisSpec",
        allocate_uid: Callable[[], str],
        warm_from: LayerSolveResult | None = None,
    ) -> LayerSolveResult:
        build_started = time.monotonic()
        greedy: LayerSolveResult | None = None
        if spec.allow_heuristic_fallback:
            try:
                greedy = schedule_layer_greedy(
                    problem, spec, _candidate_allocator()
                )
            except SchedulingError:
                greedy = None

        layer_model = build_layer_model(problem, spec)

        warm_values = None
        warm_start = None
        if spec.enable_warm_start:
            if warm_from is not None:
                warm_values = encode_layer_start(layer_model, warm_from)
            warm_start = warm_values
            if warm_start is None and greedy is not None:
                warm_start = encode_layer_start(layer_model, greedy)
        build_time = time.monotonic() - build_started

        def warm_candidate() -> LayerSolveResult | None:
            """The previous pass's solution, re-decoded for this problem."""
            if warm_values is None:
                return None
            reused = decode_layer_solution(
                layer_model,
                Solution(
                    status=SolveStatus.FEASIBLE,
                    objective=layer_model.model.objective.value(warm_values),
                    values=warm_values,
                    backend="reuse",
                ),
                _candidate_allocator(),
            )
            reused.solver_status = "warm"
            return reused

        def finalize(
            result: LayerSolveResult, solution: Solution | None = None
        ) -> LayerSolveResult:
            base = solution.stats if solution is not None else None
            result = rename_new_devices(result, allocate_uid)
            result.stats = SolveStats(
                layer=problem.layer_index,
                backend=base.backend if base else "heuristic",
                status=result.solver_status,
                nodes=base.nodes if base else 0,
                simplex_iterations=base.simplex_iterations if base else 0,
                build_time=build_time,
                solve_time=base.solve_time if base else 0.0,
                cache_hit=False,
                warm_started=base.warm_started if base else False,
            )
            return result

        try:
            solution = layer_model.model.solve(
                backend=spec.backend,
                time_limit=spec.time_limit,
                mip_gap=spec.mip_gap,
                warm_start=warm_start,
            )
        except SolverError:
            fallback = warm_candidate() or greedy
            if fallback is not None:
                return finalize(fallback)
            raise

        if solution.status.has_solution:
            ilp_result = decode_layer_solution(
                layer_model, solution, _candidate_allocator()
            )
            if solution.status is SolveStatus.OPTIMAL:
                return finalize(ilp_result, solution)
            # Time-limited incumbent: race it against the previous pass's
            # solution and the greedy schedule.  Candidate order breaks cost
            # ties — reuse first, for binding stability across passes.
            candidates = [
                c
                for c in (warm_candidate(), ilp_result, greedy)
                if c is not None
            ]
            winner = min(
                candidates, key=lambda c: layer_cost(c, problem, spec)
            )
            return finalize(winner, solution)
        if solution.status is SolveStatus.INFEASIBLE:
            raise InfeasibleError(
                f"layer {problem.layer_index} is infeasible under |D|="
                f"{spec.max_devices}"
            )
        fallback = warm_candidate() or greedy
        if fallback is not None:
            return finalize(fallback, solution)
        raise SolverError(
            f"layer {problem.layer_index}: no solution within "
            f"{spec.time_limit}s and fallback disabled"
        )


_SCHEDULERS: dict[str, Callable[[], SchedulerBackend]] = {}


def register_scheduler(
    name: str, factory: Callable[[], SchedulerBackend]
) -> None:
    _SCHEDULERS[name] = factory


def available_schedulers() -> tuple[str, ...]:
    return tuple(_SCHEDULERS)


def create_scheduler(name: str) -> SchedulerBackend:
    try:
        factory = _SCHEDULERS[name]
    except KeyError:
        choices = ", ".join(available_schedulers())
        raise ReproError(
            f"unknown scheduler {name!r} (choices: {choices})"
        ) from None
    return factory()


register_scheduler("portfolio", PortfolioBackend)
register_scheduler("greedy", GreedyBackend)
register_scheduler("ilp-highs", lambda: IlpBackend("highs"))
register_scheduler("ilp-bnb", lambda: IlpBackend("bnb"))


#: The scheduler a degraded (timeout-fallback) re-run pins: the greedy
#: list scheduler never builds an ILP, so its runtime is bounded by the
#: layer size alone — it cannot hit the wall-clock budget that failed
#: the original solve.
DEGRADED_SCHEDULER = "greedy"


def degraded_spec(spec: "SynthesisSpec") -> "SynthesisSpec":
    """A copy of ``spec`` pinned to the always-feasible degraded path.

    Used by the synthesis service when a job's ILP solve exceeds its
    wall-clock budget: the re-run keeps every problem-defining knob
    (device cap, threshold, weights, transport model) but swaps the
    per-layer scheduler for :data:`DEGRADED_SCHEDULER` and skips
    re-synthesis refinement passes, trading solution quality for a
    bounded, predictable runtime.  Results produced this way are flagged
    ``degraded`` on the wire and never stored as the run's canonical
    result.
    """
    return replace(
        spec,
        scheduler=DEGRADED_SCHEDULER,
        max_iterations=0,
        improvement_threshold=max(0.0, spec.improvement_threshold),
    )
