"""Scheduler backends: pluggable strategies for one layer solve.

Extracted from the old monolithic ``synthesizer._solve_layer`` so the
per-layer solve is a first-class, isolated stage (and so parallel workers
in :mod:`repro.hls.parallel` can run one without dragging the whole driver
along).  A :class:`SchedulerBackend` turns a
:class:`~repro.hls.milp_model.LayerProblem` into a
:class:`~repro.hls.decode.LayerSolveResult`:

* ``ilp-highs`` / ``ilp-bnb`` — the layer ILP on a pinned solver backend;
* ``greedy`` — the list-scheduling heuristic alone;
* ``lp-bound`` — the greedy schedule plus a certified LP-relaxation lower
  bound (no ILP search; the degraded service path pins this one);
* ``approx-lp`` — LP relaxation, deterministic rounding, greedy repair,
  raced against the plain greedy schedule (never worse than greedy);
* ``portfolio`` (default) — the paper flow: ILP with warm start, raced
  against previous-pass reuse and the greedy schedule on
  :func:`layer_cost`, with the seed's fallback ladder.

Every backend attaches certified-quality telemetry to its
:class:`~repro.ilp.SolveStats`: the achieved layer objective, a proven
lower bound when one exists (the LP-relaxation optimum or the MIP dual
bound — never the requested ``spec.mip_gap`` tolerance echoed back), and
the resulting integrality gap.

Uid discipline: backends allocate device uids for *the returned result
only* (never for discarded race candidates), so the caller's allocator
advances by exactly ``len(result.new_devices)`` per solve.  That invariant
is what makes parallel speculation's uid prediction exact — see
``hls/parallel.py``.
"""

from __future__ import annotations

import math
import time
from dataclasses import replace
from typing import TYPE_CHECKING, Callable, Protocol

from ..errors import InfeasibleError, ReproError, SchedulingError, SolverError
from ..ilp import (
    Solution,
    SolverSession,
    SolveStats,
    SolveStatus,
    relative_gap,
    relaxation_bound,
)
from .decode import LayerSolveResult, decode_layer_solution
from .heuristic import schedule_layer_greedy
from .milp_model import (
    LayerModel,
    LayerProblem,
    build_layer_model,
    encode_layer_start,
    ensure_fully_separated,
    separate_conflicts,
)
from .rounding import derive_rounding_guide
from .schedule import LayerSchedule
from .transport import path_key

if TYPE_CHECKING:
    from .session import SessionPool
    from .spec import SynthesisSpec

#: Wall-clock cap (seconds) on one LP-relaxation bound solve.  The LP is
#: polynomial — far cheaper than the ILP it bounds — so a short budget is
#: enough on the paper cases, and keeps the bound from eating the layer's
#: solve budget on pathological models.
LP_BOUND_BUDGET = 10.0


def layer_cost(
    result: LayerSolveResult, problem: LayerProblem, spec: "SynthesisSpec"
) -> float:
    """Evaluate a decoded layer result under the layer ILP's objective.

    Used to compare the ILP incumbent against the greedy fallback on equal
    terms: weighted makespan + cost of newly integrated devices + newly
    created transportation paths.
    """
    costs = spec.cost_model
    weights = spec.weights
    area = sum(d.area(costs) for d in result.new_devices)
    processing = sum(d.processing_cost(costs) for d in result.new_devices)

    new_paths: set[tuple[str, str]] = set()

    def note(dev_a: str, dev_b: str) -> None:
        if dev_a != dev_b:
            pair = path_key(dev_a, dev_b)
            if pair not in problem.existing_paths:
                new_paths.add(pair)

    for parent, child in problem.in_layer_edges:
        note(result.binding[parent], result.binding[child])
    for parent_device, child in problem.incoming:
        note(parent_device, result.binding[child])
    for parent, child_device in problem.outgoing:
        note(result.binding[parent], child_device)

    # Storage pressure, mirroring the ILP objective exactly: ``w`` per
    # crossing edge bound apart (the model charges ``w * (1 - od)`` when
    # co-binding is legal and the constant ``w`` when it is not — both
    # reduce to "charged unless bound together").
    storage = 0.0
    for (parent_device, child), weight in problem.storage_in.items():
        if result.binding[child] != parent_device:
            storage += weight
    for (parent, child_device), weight in problem.storage_out.items():
        if result.binding[parent] != child_device:
            storage += weight

    return (
        weights.time * result.schedule.makespan
        + weights.area * area
        + weights.processing * processing
        + weights.paths * len(new_paths)
        + storage
    )


def _relaxation_bound(
    layer_model: LayerModel, spec: "SynthesisSpec"
) -> Solution | None:
    """Solve the layer LP relaxation; the optimum certifies a lower bound.

    Returns the LP :class:`Solution` when it solved to optimality, else
    ``None`` — a time- or iteration-limited LP proves nothing and must not
    be reported as a bound.

    Certificates are only issued on fully separated models: a lazily built
    layer model gets its pending conflict rows emitted here before the LP
    runs, so every recorded bound is attributable to the complete paper
    encoding (see :mod:`repro.ilp.relaxation`).
    """
    ensure_fully_separated(layer_model)
    return relaxation_bound(
        layer_model.model,
        backend=spec.backend,
        time_limit=min(spec.time_limit, LP_BOUND_BUDGET),
    )


def _solution_bound(solution: Solution | None) -> float | None:
    """The proven dual bound a MIP solve carries, if any.

    An OPTIMAL solve without an explicit dual bound is its own bound; a
    time-limited solve only certifies what its solver proved (which may be
    nothing — then ``None``, never the incumbent objective).
    """
    if solution is None:
        return None
    bound = solution.bound
    if bound is None and solution.status is SolveStatus.OPTIMAL:
        bound = solution.objective
    if bound is None or not math.isfinite(bound):
        return None
    return bound


def _certify(
    stats: SolveStats,
    result: LayerSolveResult,
    problem: LayerProblem,
    spec: "SynthesisSpec",
    bound: float | None,
) -> SolveStats:
    """Attach the achieved objective and the certified bound to ``stats``.

    ``bound`` is a proven lower bound on the layer objective or ``None``;
    the recorded gap is the *achieved* one, computed from the result, never
    the requested ``spec.mip_gap`` tolerance.  A bound a hair above the
    achieved cost (LP/ILP tolerance noise) is clamped down to it, so
    ``lower_bound <= objective`` holds exactly.
    """
    cost = layer_cost(result, problem, spec)
    stats.objective = cost if math.isfinite(cost) else None
    if bound is not None and math.isfinite(bound) and stats.objective is not None:
        stats.lower_bound = min(bound, cost)
        stats.integrality_gap = relative_gap(cost, stats.lower_bound)
    return stats


def _acquire_layer_model(
    problem: LayerProblem,
    spec: "SynthesisSpec",
    sessions: "SessionPool | None",
    backend: str | None = None,
) -> tuple[LayerModel, SolverSession | None]:
    """The layer model for ``problem`` plus its solver session, if any.

    With a session pool (and ``spec.enable_solver_sessions``), the model
    comes from the pool — delta-mutated in place when the previous pass's
    session can absorb the change, freshly built otherwise — and solves go
    through the attached :class:`~repro.ilp.SolverSession`.  Without one,
    the model is built from scratch and solved statelessly; results are
    identical either way (the session re-assembles the same standard form).
    """
    if sessions is not None and spec.enable_solver_sessions:
        session = sessions.acquire(problem, spec, backend=backend)
        return session.layer_model, session.solver
    layer_model = build_layer_model(
        problem, spec, lazy_conflicts=spec.conflict_mode == "lazy"
    )
    return layer_model, None


#: row name of the transient warm-start objective cutoff.
_WARM_CUTOFF_ROW = "warm_cutoff"


def _run_layer_solve(
    layer_model: LayerModel,
    solver: SolverSession | None,
    spec: "SynthesisSpec",
    warm_start=None,
    backend: str | None = None,
) -> Solution:
    """One layer MIP solve, with lazy conflict separation when enabled.

    Eager models solve once.  Lazy models loop: solve the relaxed model,
    detect same-device operation pairs that actually overlap
    (:func:`separate_conflicts`), emit only those conflict groups, and
    re-solve — in-session when ``solver`` is given, so only the new rows
    are extracted.  When the layer's time budget runs dry mid-loop, the
    remaining groups are emitted wholesale and one final solve runs on the
    complete model (any incumbent of the full model is valid, so the
    fallback ladder above stays sound).

    With ``spec.warm_cutoff`` and a warm start, the solve runs under a
    transient objective cutoff row at the warm point's cost.  The warm
    vector has already been validated against every row — including, via
    :func:`encode_layer_start`'s unemitted-violation guard, the conflict
    groups a lazy model has not emitted yet — so the cutoff stays valid
    across separation iterations and is removed before returning, leaving
    the (session-held) model canonical.

    The returned solution's ``runtime``/``stats.solve_time`` accumulate
    across separation iterations — the caller sees the layer's true solver
    cost, not the last iteration's.
    """
    started = time.monotonic()

    model = layer_model.model
    cutoff = spec.warm_cutoff and warm_start is not None
    if cutoff:
        model.add(
            model.objective.copy() <= model.objective.value(warm_start),
            name=_WARM_CUTOFF_ROW,
        )
    try:
        return _run_layer_solve_inner(
            layer_model, solver, spec, warm_start, backend, started
        )
    finally:
        if cutoff:
            model.remove_constraint(_WARM_CUTOFF_ROW)


def _run_layer_solve_inner(
    layer_model: LayerModel,
    solver: SolverSession | None,
    spec: "SynthesisSpec",
    warm_start,
    backend: str | None,
    started: float,
) -> Solution:
    def run(time_limit: float) -> Solution:
        if solver is not None:
            return solver.solve(
                time_limit=time_limit,
                mip_gap=spec.mip_gap,
                warm_start=warm_start,
            )
        return layer_model.model.solve(
            backend=backend or spec.backend,
            time_limit=time_limit,
            mip_gap=spec.mip_gap,
            warm_start=warm_start,
        )

    solution = run(spec.time_limit)
    if not layer_model.lazy_conflicts or layer_model.fully_separated:
        return solution
    total_runtime = solution.runtime
    while solution.status.has_solution:
        if not separate_conflicts(layer_model, solution.values):
            break
        remaining = spec.time_limit - (time.monotonic() - started)
        if remaining <= 0.5:
            # Budget exhausted: stop separating incrementally, complete the
            # model, and give the final solve a token budget so it returns
            # an incumbent that is valid against *all* conflict rows.
            ensure_fully_separated(layer_model)
            remaining = 1.0
        solution = run(remaining)
        total_runtime += solution.runtime
    solution.runtime = total_runtime
    if solution.stats is not None:
        solution.stats.solve_time = total_runtime
    return solution


def _candidate_allocator() -> Callable[[], str]:
    """Uid source for race candidates; winners are renamed by the caller."""
    counter = [0]

    def allocate() -> str:
        uid = f"cand#{counter[0]}"
        counter[0] += 1
        return uid

    return allocate


def rename_new_devices(
    result: LayerSolveResult, allocate_uid: Callable[[], str]
) -> LayerSolveResult:
    """Re-issue the result's new-device uids from ``allocate_uid``.

    Draws exactly ``len(result.new_devices)`` uids, in new-device order, and
    rewrites the binding and schedule accordingly.  Fixed-device references
    are untouched.
    """
    if not result.new_devices:
        return result
    mapping = {d.uid: allocate_uid() for d in result.new_devices}
    new_devices = [replace(d, uid=mapping[d.uid]) for d in result.new_devices]
    binding = {
        op: mapping.get(dev, dev) for op, dev in result.binding.items()
    }
    schedule = LayerSchedule(index=result.schedule.index)
    for placement in result.schedule.placements.values():
        schedule.place(
            replace(
                placement,
                device_uid=mapping.get(
                    placement.device_uid, placement.device_uid
                ),
            )
        )
    return replace(
        result, binding=binding, schedule=schedule, new_devices=new_devices
    )


class SchedulerBackend(Protocol):
    """One strategy for solving a single layer.

    ``solve`` must draw uids for the returned result's new devices (and
    nothing else) from ``allocate_uid``; ``warm_from`` is the previous
    pass's result for this layer, already rebased onto the problem's fixed
    devices, or ``None``.  ``sessions`` is the run's solver-session pool
    (or ``None``); backends that build the layer MIP acquire their model
    through it so re-solves mutate a live model instead of re-encoding.
    """

    name: str

    def solve(
        self,
        problem: LayerProblem,
        spec: "SynthesisSpec",
        allocate_uid: Callable[[], str],
        warm_from: LayerSolveResult | None = None,
        sessions: "SessionPool | None" = None,
    ) -> LayerSolveResult: ...


class GreedyBackend:
    """The list-scheduling heuristic alone (always feasible, never optimal)."""

    name = "greedy"

    def solve(
        self,
        problem: LayerProblem,
        spec: "SynthesisSpec",
        allocate_uid: Callable[[], str],
        warm_from: LayerSolveResult | None = None,
        sessions: "SessionPool | None" = None,
    ) -> LayerSolveResult:
        build_started = time.monotonic()
        try:
            result = schedule_layer_greedy(problem, spec, allocate_uid)
        except SchedulingError as exc:
            raise SolverError(
                f"layer {problem.layer_index}: greedy scheduler failed: {exc}"
            ) from exc
        result.stats = SolveStats(
            layer=problem.layer_index,
            backend="heuristic",
            status=result.solver_status,
            build_time=time.monotonic() - build_started,
        )
        _certify(result.stats, result, problem, spec, None)
        return result


class IlpBackend:
    """The layer ILP on one pinned solver backend, no fallback race."""

    def __init__(self, solver: str) -> None:
        self.solver = solver
        self.name = f"ilp-{solver}"

    def solve(
        self,
        problem: LayerProblem,
        spec: "SynthesisSpec",
        allocate_uid: Callable[[], str],
        warm_from: LayerSolveResult | None = None,
        sessions: "SessionPool | None" = None,
    ) -> LayerSolveResult:
        build_started = time.monotonic()
        layer_model, solver = _acquire_layer_model(
            problem, spec, sessions, backend=self.solver
        )
        encode_time = time.monotonic() - build_started
        warm_start = None
        if spec.enable_warm_start and warm_from is not None:
            warm_start = encode_layer_start(layer_model, warm_from)
        build_time = time.monotonic() - build_started
        solution = _run_layer_solve(
            layer_model, solver, spec, warm_start, backend=self.solver
        )
        if solution.status.has_solution:
            result = decode_layer_solution(layer_model, solution, allocate_uid)
            base = solution.stats
            result.stats = SolveStats(
                layer=problem.layer_index,
                backend=base.backend if base else self.solver,
                status=result.solver_status,
                nodes=base.nodes if base else 0,
                simplex_iterations=base.simplex_iterations if base else 0,
                build_time=build_time,
                encode_time=encode_time,
                solve_time=base.solve_time if base else 0.0,
                warm_started=base.warm_started if base else False,
            )
            _certify(
                result.stats, result, problem, spec,
                _solution_bound(solution),
            )
            return result
        if solution.status is SolveStatus.INFEASIBLE:
            raise InfeasibleError(
                f"layer {problem.layer_index} is infeasible under |D|="
                f"{spec.max_devices}"
            )
        raise SolverError(
            f"layer {problem.layer_index}: no solution within "
            f"{spec.time_limit}s on backend {self.name!r}"
        )


class PortfolioBackend:
    """ILP, greedy, and previous-pass reuse race (the paper flow).

    The greedy list scheduler is cheap and always feasible, so it doubles
    as both a fallback (when the ILP finds no incumbent in time) and a
    quality floor (when the ILP's time-limited incumbent is poor).

    ``warm_from`` serves two roles: it seeds the ILP with an incumbent on
    backends that accept one (greedy is the backstop start), and — because
    the HiGHS wrapper cannot inject incumbents — it re-enters the race as a
    candidate whenever it is still feasible for the current problem, so a
    time-limited re-solve can never regress below what the previous pass
    already achieved.  That floor is also what lets re-synthesis converge:
    a reused solution keeps the binding stable, which keeps the transport
    estimates stable, which lets the next pass hit the solve cache.
    """

    name = "portfolio"

    def solve(
        self,
        problem: LayerProblem,
        spec: "SynthesisSpec",
        allocate_uid: Callable[[], str],
        warm_from: LayerSolveResult | None = None,
        sessions: "SessionPool | None" = None,
    ) -> LayerSolveResult:
        build_started = time.monotonic()
        greedy: LayerSolveResult | None = None
        if spec.allow_heuristic_fallback:
            try:
                greedy = schedule_layer_greedy(
                    problem, spec, _candidate_allocator()
                )
            except SchedulingError:
                greedy = None

        encode_started = time.monotonic()
        layer_model, solver = _acquire_layer_model(problem, spec, sessions)
        encode_time = time.monotonic() - encode_started

        warm_values = None
        warm_start = None
        if spec.enable_warm_start:
            if warm_from is not None:
                warm_values = encode_layer_start(layer_model, warm_from)
            warm_start = warm_values
            if warm_start is None and greedy is not None:
                warm_start = encode_layer_start(layer_model, greedy)
        build_time = time.monotonic() - build_started

        def warm_candidate() -> LayerSolveResult | None:
            """The previous pass's solution, re-decoded for this problem."""
            if warm_values is None:
                return None
            reused = decode_layer_solution(
                layer_model,
                Solution(
                    status=SolveStatus.FEASIBLE,
                    objective=layer_model.model.objective.value(warm_values),
                    values=warm_values,
                    backend="reuse",
                ),
                _candidate_allocator(),
            )
            reused.solver_status = "warm"
            return reused

        # The certified bound for this layer, resolved at most once: the
        # ILP's proven dual bound when it has one, else the LP-relaxation
        # optimum (so even all-heuristic outcomes leave with a certificate).
        bound_cache: dict[str, float | None] = {}

        def certified_bound(solution: Solution | None) -> float | None:
            if "bound" not in bound_cache:
                bound = _solution_bound(solution)
                if bound is None:
                    relaxed = _relaxation_bound(layer_model, spec)
                    bound = relaxed.objective if relaxed is not None else None
                bound_cache["bound"] = bound
            return bound_cache["bound"]

        def finalize(
            result: LayerSolveResult, solution: Solution | None = None
        ) -> LayerSolveResult:
            base = solution.stats if solution is not None else None
            result = rename_new_devices(result, allocate_uid)
            result.stats = SolveStats(
                layer=problem.layer_index,
                backend=base.backend if base else "heuristic",
                status=result.solver_status,
                nodes=base.nodes if base else 0,
                simplex_iterations=base.simplex_iterations if base else 0,
                build_time=build_time,
                encode_time=encode_time,
                solve_time=base.solve_time if base else 0.0,
                cache_hit=False,
                warm_started=base.warm_started if base else False,
            )
            _certify(
                result.stats, result, problem, spec, certified_bound(solution)
            )
            return result

        try:
            solution = _run_layer_solve(layer_model, solver, spec, warm_start)
        except SolverError:
            fallback = warm_candidate() or greedy
            if fallback is not None:
                return finalize(fallback)
            raise

        if solution.status.has_solution:
            ilp_result = decode_layer_solution(
                layer_model, solution, _candidate_allocator()
            )
            if solution.status is SolveStatus.OPTIMAL:
                return finalize(ilp_result, solution)
            # Time-limited incumbent: race it against the previous pass's
            # solution and the greedy schedule.  Candidate order breaks cost
            # ties — reuse first, for binding stability across passes.
            candidates = [
                c
                for c in (warm_candidate(), ilp_result, greedy)
                if c is not None
            ]
            winner = min(
                candidates, key=lambda c: layer_cost(c, problem, spec)
            )
            return finalize(winner, solution)
        if solution.status is SolveStatus.INFEASIBLE:
            raise InfeasibleError(
                f"layer {problem.layer_index} is infeasible under |D|="
                f"{spec.max_devices}"
            )
        fallback = warm_candidate() or greedy
        if fallback is not None:
            return finalize(fallback, solution)
        raise SolverError(
            f"layer {problem.layer_index}: no solution within "
            f"{spec.time_limit}s and fallback disabled"
        )


class LpBoundBackend:
    """The greedy schedule plus a certified LP-relaxation lower bound.

    No ILP search runs: the schedule is the list scheduler's (always
    feasible, runtime bounded by the layer size), and the LP relaxation of
    the layer ILP supplies a proven lower bound on the layer objective —
    so the result reports "within X% of optimal" without ever exposing the
    run to the exact solver's wall clock.  The degraded service path pins
    this backend for exactly that trade.
    """

    name = "lp-bound"

    def solve(
        self,
        problem: LayerProblem,
        spec: "SynthesisSpec",
        allocate_uid: Callable[[], str],
        warm_from: LayerSolveResult | None = None,
        sessions: "SessionPool | None" = None,
    ) -> LayerSolveResult:
        build_started = time.monotonic()
        try:
            result = schedule_layer_greedy(problem, spec, allocate_uid)
        except SchedulingError as exc:
            raise SolverError(
                f"layer {problem.layer_index}: greedy scheduler failed: {exc}"
            ) from exc
        # The model exists only to be relaxed once — no re-solves to
        # amortize, so this backend stays eager and session-free.
        encode_started = time.monotonic()
        layer_model = build_layer_model(problem, spec)
        encode_time = time.monotonic() - encode_started
        build_time = time.monotonic() - build_started
        relaxed = _relaxation_bound(layer_model, spec)
        result.stats = SolveStats(
            layer=problem.layer_index,
            backend="lp-bound",
            status=result.solver_status,
            simplex_iterations=(
                relaxed.stats.simplex_iterations
                if relaxed is not None and relaxed.stats is not None
                else 0
            ),
            build_time=build_time,
            encode_time=encode_time,
            solve_time=relaxed.runtime if relaxed is not None else 0.0,
        )
        _certify(
            result.stats, result, problem, spec,
            relaxed.objective if relaxed is not None else None,
        )
        return result


class ApproxLpBackend:
    """LP relaxation + deterministic rounding + greedy repair.

    Solves the layer LP (polynomial, no branching), rounds the fractional
    binding and slot configurations into a
    :class:`~repro.hls.rounding.RoundingGuide`, and replays the greedy
    list scheduler under that guide — every rounding decision that would
    break feasibility falls back to the plain greedy rule, so the result
    is always a valid layer schedule.  The unguided greedy schedule stays
    in the race as a floor, so on any single layer problem approx-lp is
    never worse than greedy on :func:`layer_cost`; the LP optimum is
    attached as the certified lower bound.
    """

    name = "approx-lp"

    def solve(
        self,
        problem: LayerProblem,
        spec: "SynthesisSpec",
        allocate_uid: Callable[[], str],
        warm_from: LayerSolveResult | None = None,
        sessions: "SessionPool | None" = None,
    ) -> LayerSolveResult:
        build_started = time.monotonic()
        layer_model = build_layer_model(problem, spec)
        build_time = time.monotonic() - build_started
        relaxed = _relaxation_bound(layer_model, spec)

        candidates: list[LayerSolveResult] = []
        if relaxed is not None:
            guide = derive_rounding_guide(layer_model, relaxed.values)
            try:
                rounded = schedule_layer_greedy(
                    problem, spec, _candidate_allocator(), guide=guide
                )
                rounded.solver_status = "rounded"
                candidates.append(rounded)
            except SchedulingError:
                pass
        try:
            candidates.append(
                schedule_layer_greedy(problem, spec, _candidate_allocator())
            )
        except SchedulingError as exc:
            if not candidates:
                raise SolverError(
                    f"layer {problem.layer_index}: greedy scheduler failed: "
                    f"{exc}"
                ) from exc

        # Rounded first: on a cost tie the LP-guided schedule wins, and the
        # plain greedy floor guarantees "never worse than greedy".
        winner = min(candidates, key=lambda c: layer_cost(c, problem, spec))
        winner = rename_new_devices(winner, allocate_uid)
        winner.stats = SolveStats(
            layer=problem.layer_index,
            backend="approx-lp",
            status=winner.solver_status,
            simplex_iterations=(
                relaxed.stats.simplex_iterations
                if relaxed is not None and relaxed.stats is not None
                else 0
            ),
            build_time=build_time,
            encode_time=build_time,
            solve_time=relaxed.runtime if relaxed is not None else 0.0,
        )
        _certify(
            winner.stats, winner, problem, spec,
            relaxed.objective if relaxed is not None else None,
        )
        return winner


_SCHEDULERS: dict[str, Callable[[], SchedulerBackend]] = {}


def register_scheduler(
    name: str, factory: Callable[[], SchedulerBackend]
) -> None:
    _SCHEDULERS[name] = factory


def available_schedulers() -> tuple[str, ...]:
    return tuple(_SCHEDULERS)


def create_scheduler(name: str) -> SchedulerBackend:
    try:
        factory = _SCHEDULERS[name]
    except KeyError:
        choices = ", ".join(available_schedulers())
        raise ReproError(
            f"unknown scheduler {name!r} (choices: {choices})"
        ) from None
    return factory()


register_scheduler("portfolio", PortfolioBackend)
register_scheduler("greedy", GreedyBackend)
register_scheduler("ilp-highs", lambda: IlpBackend("highs"))
register_scheduler("ilp-bnb", lambda: IlpBackend("bnb"))
register_scheduler("lp-bound", LpBoundBackend)
register_scheduler("approx-lp", ApproxLpBackend)


#: The scheduler a degraded (timeout-fallback) re-run pins: the greedy
#: list scheduler plus a short-budget LP bound — it never runs the exact
#: ILP search, so its runtime is bounded by the layer size alone, and the
#: re-run still leaves with a certified integrality gap instead of a
#: blind "degraded" flag.
DEGRADED_SCHEDULER = "lp-bound"


def degraded_spec(spec: "SynthesisSpec") -> "SynthesisSpec":
    """A copy of ``spec`` pinned to the always-feasible degraded path.

    Used by the synthesis service when a job's ILP solve exceeds its
    wall-clock budget: the re-run keeps every problem-defining knob
    (device cap, threshold, weights, transport model) but swaps the
    per-layer scheduler for :data:`DEGRADED_SCHEDULER` and skips
    re-synthesis refinement passes, trading solution quality for a
    bounded, predictable runtime.  Results produced this way are flagged
    ``degraded`` on the wire — with the certified gap the LP bound proves
    — and never stored as the run's canonical result.
    """
    return replace(
        spec,
        scheduler=DEGRADED_SCHEDULER,
        max_iterations=0,
        improvement_threshold=max(0.0, spec.improvement_threshold),
        # The degraded path never runs the exact ILP, so ``time_limit``
        # only caps the LP bound solve — don't let the (too-small) budget
        # that failed the original run starve the certificate as well.
        time_limit=max(spec.time_limit, LP_BOUND_BUDGET),
    )
