"""Reagent-transportation time estimation (Sec. 4.1).

Transportation time between sequential operations depends on flow-channel
lengths, which are only known after physical layout.  The paper's estimate:

1. first pass — every dependency edge gets a user constant ``t``;
2. after each full synthesis iteration — device-to-device paths are ranked
   by usage frequency, and the more a path is used the shorter its channel
   should be laid out, hence the shorter its transportation time; each path
   is mapped onto a term of a user-defined arithmetic progression
   (most-used path → minimum term);
3. edges whose endpoints share a device get transportation time 0.
"""

from __future__ import annotations

from collections import Counter

from ..operations.assay import Assay
from .spec import SynthesisSpec


def path_key(device_a: str, device_b: str) -> tuple[str, str]:
    """Canonical (unordered) key of a device-to-device channel."""
    return (device_a, device_b) if device_a <= device_b else (device_b, device_a)


class TransportEstimator:
    """Per-edge transportation times, refined between iterations."""

    def __init__(self, assay: Assay, spec: SynthesisSpec) -> None:
        self._assay = assay
        self._spec = spec
        self._edge_time: dict[tuple[str, str], int] = {
            edge: spec.transport_default for edge in assay.edges
        }
        #: path -> usage count of the latest refinement, for reporting.
        self.path_usage: dict[tuple[str, str], int] = {}
        #: path -> assigned progression term of the latest refinement.
        self.path_time: dict[tuple[str, str], int] = {}
        self.refined = False

    def edge_time(self, parent_uid: str, child_uid: str) -> int:
        """Current transportation estimate for one dependency edge."""
        return self._edge_time[(parent_uid, child_uid)]

    def release_time(self, uid: str, within: set[str] | None = None) -> int:
        """How long ``uid``'s device stays busy shipping outputs.

        The device is occupied until the slowest outgoing transfer leaves
        (constraints (10)/(11) add ``t_a``/``t_b`` to the durations).
        ``within`` restricts to children inside a given layer.
        """
        times = [
            self._edge_time[(uid, child)]
            for child in self._assay.children(uid)
            if within is None or child in within
        ]
        return max(times, default=0)

    def refine(self, binding: dict[str, str]) -> None:
        """Refine all edge times from a complete operation→device binding.

        Paths are ranked by usage; rank k gets the progression's k-th term.
        Ties in usage are broken deterministically by path key.
        """
        usage: Counter[tuple[str, str]] = Counter()
        for parent, child in self._assay.edges:
            dev_p, dev_c = binding[parent], binding[child]
            if dev_p != dev_c:
                usage[path_key(dev_p, dev_c)] += 1

        ranked = sorted(usage.items(), key=lambda kv: (-kv[1], kv[0]))
        progression = self._spec.transport_progression
        self.path_time = {
            path: progression.term_for_rank(rank)
            for rank, (path, _count) in enumerate(ranked)
        }
        self.path_usage = dict(usage)

        for parent, child in self._assay.edges:
            dev_p, dev_c = binding[parent], binding[child]
            if dev_p == dev_c:
                self._edge_time[(parent, child)] = 0
            else:
                self._edge_time[(parent, child)] = self.path_time[
                    path_key(dev_p, dev_c)
                ]
        self.refined = True

    def snapshot(self) -> dict[tuple[str, str], int]:
        """Copy of the current per-edge estimates (for tests/reporting)."""
        return dict(self._edge_time)

    def fork(self) -> "TransportEstimator":
        """Frozen copy of the current estimation state.

        The synthesizer forks the estimator at the start of every pass so
        the returned result can expose the estimates its *selected* pass
        actually scheduled against, even though the shared estimator keeps
        refining afterwards.  The fork is always a plain
        :class:`TransportEstimator` (subclasses may carry placement state
        that is not meaningfully copyable); it records estimates, it does
        not re-refine.
        """
        clone = TransportEstimator(self._assay, self._spec)
        clone._edge_time = dict(self._edge_time)
        clone.path_usage = dict(self.path_usage)
        clone.path_time = dict(self.path_time)
        clone.refined = self.refined
        return clone
