"""Persistent per-layer solver sessions for incremental re-synthesis.

The re-synthesis loop (paper Sec. 3.2) re-solves every layer once per
pass, but between consecutive passes a layer's problem usually changes
only in its *numbers* — transportation estimates and release margins —
while the operations, devices, and dependency structure stay fixed.  The
eager flow still rebuilt the full MILP from scratch each time.

A :class:`SessionPool` keeps one :class:`LayerSession` per structural
layer-problem fingerprint (:func:`repro.hls.cache.
structural_fingerprint_layer_problem`).  On re-acquisition it asks
:func:`repro.hls.milp_model.encode_layer_delta` for a
:class:`repro.ilp.ModelDelta` that maps the changed problem onto the
existing model; when the encoder can express the change, the delta is
applied through the solver session (which re-extracts only the dirtied
rows) instead of re-encoding thousands of rows.  When it cannot — the
structure shifted in a way the fingerprint missed, or the spec changed —
the pool falls back to a from-scratch build, so a session is never
*required* for correctness, only for speed.

Determinism: a mutated session re-assembles the exact standard form a
scratch build of the mutated problem produces (the csr assembly
canonicalizes term order), so synthesis results are byte-identical with
sessions on or off.  That identity is asserted by the incremental-smoke
CI job and ``tests/test_solver_sessions.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ilp import SolverSession, attach
from .cache import structural_fingerprint_layer_problem
from .milp_model import (
    LayerModel,
    LayerProblem,
    apply_layer_delta,
    build_layer_model,
    encode_layer_delta,
)
from .spec import SynthesisSpec


@dataclass
class LayerSession:
    """One layer's live model plus the solver attached to it."""

    layer_model: LayerModel
    solver: SolverSession

    def close(self) -> None:
        self.solver.close()


@dataclass
class SessionPool:
    """LRU pool of :class:`LayerSession` keyed by structural fingerprint.

    ``capacity`` bounds the live sessions (each holds a full MILP model
    plus the solver's extracted rows); least-recently-acquired sessions
    are closed and evicted.  Counters expose how often re-acquisition
    managed a delta mutation (``reused``) versus a from-scratch rebuild
    (``rebuilt``).
    """

    capacity: int = 64
    _entries: dict[str, LayerSession] = field(default_factory=dict)
    created: int = 0
    reused: int = 0
    rebuilt: int = 0
    evictions: int = 0

    def __len__(self) -> int:
        return len(self._entries)

    def counters(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "created": self.created,
            "reused": self.reused,
            "rebuilt": self.rebuilt,
            "evictions": self.evictions,
        }

    def _build(
        self, problem: LayerProblem, spec: SynthesisSpec, backend: str | None
    ) -> LayerSession:
        layer_model = build_layer_model(
            problem, spec, lazy_conflicts=spec.conflict_mode == "lazy"
        )
        solver = attach(layer_model.model, backend=backend or spec.backend)
        return LayerSession(layer_model=layer_model, solver=solver)

    def _insert(self, key: str, session: LayerSession) -> None:
        self._entries.pop(key, None)
        self._entries[key] = session
        while len(self._entries) > max(1, self.capacity):
            oldest = next(iter(self._entries))
            self._entries.pop(oldest).close()
            self.evictions += 1

    def acquire(
        self,
        problem: LayerProblem,
        spec: SynthesisSpec,
        backend: str | None = None,
    ) -> LayerSession:
        """The session for ``problem``, delta-mutated into its current
        numbers — or a freshly built one when no session can absorb it.

        The returned session's ``layer_model.problem`` *is* ``problem``
        (decode reads durations and transport from it), and its model
        matches what ``build_layer_model(problem, spec)`` would produce.
        ``backend`` pins the solver backend a fresh session attaches
        (defaults to ``spec.backend``); it does not enter the pool key —
        the spec's scheduler/backend fields already do.
        """
        key = structural_fingerprint_layer_problem(problem, spec)
        session = self._entries.get(key)
        if session is not None:
            # dicts preserve insertion order; re-inserting marks the key
            # most-recently-used.
            self._entries.pop(key)
            self._entries[key] = session
            encoded = encode_layer_delta(session.layer_model, problem, spec)
            if encoded is not None:
                delta, new_horizon = encoded
                session.solver.apply(delta)
                apply_layer_delta(
                    session.layer_model, problem, delta, new_horizon,
                    apply=False,
                )
                self.reused += 1
                return session
            # The fingerprint matched but the delta encoder declined
            # (structure drifted in a dimension the key does not cover);
            # rebuild in place rather than trust a stale model.
            session.close()
            session = self._build(problem, spec, backend)
            self._insert(key, session)
            self.rebuilt += 1
            return session
        session = self._build(problem, spec, backend)
        self._insert(key, session)
        self.created += 1
        return session

    def close(self) -> None:
        for session in self._entries.values():
            session.close()
        self._entries.clear()
