"""Speculative parallel layer solves for re-synthesis passes.

The paper's re-synthesis semantics (Sec. 3.2) make per-layer solves
*almost* independent within a pass: layer ``L_i`` inherits the previous
pass's device set ``D \\ D'_i``, and in the common case — once bindings
start stabilizing — each layer simply reproduces its previous result.  The
sequential driver still couples layers through the evolving pass state
(drops, fresh device uids, cross-layer bindings), so naive fan-out would
change results.  This module parallelizes without changing a single byte
of output, via speculation:

1. **Predict.**  Before a re-synthesis pass runs, simulate it under the
   assumption that every layer reproduces its previous-pass result.  The
   simulation uses the *same* ``prepare_layer_problem`` /
   ``apply_layer_result`` code as the real pass and a *cloned* uid
   allocator, so predicted problems carry the exact device uids the real
   pass would allocate (backends draw uids for adopted results only, so
   the counter advance per layer is ``len(result.new_devices)`` — see
   ``hls/backends.py``).
2. **Dispatch.**  Each predicted problem that the solve cache would not
   replay anyway is shipped to a ``ProcessPoolExecutor`` worker as a
   picklable :class:`LayerWork`.  Workers run the configured scheduler
   backend and return the result in the cache's canonical wire format.
3. **Gate.**  When the real pass reaches a layer, the speculative result
   is adopted **only** if the actual problem's *strict* fingerprint (raw
   uids — the ILP layout is uid-sensitive) equals the predicted one:
   equality proves the worker solved exactly the problem the sequential
   driver would have.  Otherwise the layer solves inline, and the
   remaining layers are re-speculated from the now-known true state
   (a new wave).
4. **Merge back.**  Adopted results are stored into the shared
   :class:`~repro.hls.cache.LayerSolveCache` by the driver exactly like
   inline solves, so cross-pass warm starts and replay keep working.

Determinism: for solves that terminate on optimality (or proven MIP gap),
``jobs=1`` and ``jobs=N`` produce byte-identical results.  A solve
truncated by its wall-clock time limit is not run-to-run deterministic
even sequentially; parallelism neither fixes nor worsens that.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..errors import ReproError
from ..ilp import SolveStats
from ..layering import LayeringResult
from ..operations.assay import Assay
from .backends import create_scheduler, rename_new_devices
from .cache import (
    LayerSolveCache,
    _CachedSolve,
    encode_layer_result,
    materialize_layer_result,
    strict_fingerprint_layer_problem,
)
from .context import PassState, UidAllocator
from .decode import LayerSolveResult
from .milp_model import LayerProblem
from .spec import SynthesisSpec
from .transport import TransportEstimator

if TYPE_CHECKING:
    from .session import SessionPool


@dataclass
class LayerWork:
    """One speculative layer solve, shipped to a worker process."""

    strict_key: str
    problem: LayerProblem
    spec: SynthesisSpec
    warm_from: LayerSolveResult | None


def _temp_allocator() -> Callable[[], str]:
    counter = [0]

    def allocate() -> str:
        uid = f"spec#{counter[0]}"
        counter[0] += 1
        return uid

    return allocate


#: Per-worker-process solver-session pool.  Worker processes are reused
#: across waves and passes, so a worker that re-speculates the same layer
#: gets the delta-mutation fast path exactly like the sequential driver.
#: Safe to share across runs: the session key includes the solve-relevant
#: spec fields, and sessions rebuild the exact standard form a scratch
#: build produces, so results stay byte-identical.
_worker_sessions: "SessionPool | None" = None


def _worker_session_pool(spec: SynthesisSpec) -> "SessionPool | None":
    global _worker_sessions
    if not spec.enable_solver_sessions:
        return None
    if _worker_sessions is None:
        from .session import SessionPool

        _worker_sessions = SessionPool()
    return _worker_sessions


def solve_layer_work(work: LayerWork):
    """Worker entry point: solve and encode, or report the failure kind.

    Returns ``("ok", entry, stats)`` or ``("error", message)``.  Errors are
    not re-raised here — the parent falls back to an inline solve, which
    deterministically reproduces (and properly raises) the same failure.
    """
    try:
        backend = create_scheduler(work.spec.scheduler)
        result = backend.solve(
            work.problem,
            work.spec,
            _temp_allocator(),
            work.warm_from,
            sessions=_worker_session_pool(work.spec),
        )
        entry = encode_layer_result(work.problem, result)
        if entry is None:
            return ("error", "result not encodable")
        return ("ok", entry, result.stats)
    except ReproError as exc:
        return ("error", str(exc))


@dataclass
class _Speculation:
    """One layer's in-flight prediction."""

    strict_key: str
    future: Future | None  # None: the cache will replay this layer anyway
    #: the result the simulation assumed this layer produces (exact uids).
    assumed: LayerSolveResult


class PassSpeculator:
    """Fans one re-synthesis pass's layer solves across worker processes.

    Lifecycle per pass: :meth:`begin_pass` (simulate + dispatch),
    then for each layer :meth:`take` (adopt or decline) and
    :meth:`observe` (validate the assumption, re-speculate on divergence),
    then :meth:`end_pass`.  :meth:`close` shuts the pool down.
    """

    def __init__(
        self,
        assay: Assay,
        layering: LayeringResult,
        spec: SynthesisSpec,
        transport: TransportEstimator,
        cache: LayerSolveCache | None,
        jobs: int,
    ) -> None:
        self.assay = assay
        self.layering = layering
        self.spec = spec
        self.transport = transport
        self.cache = cache
        self.jobs = jobs
        self._pool: ProcessPoolExecutor | None = None
        self._broken = False
        self._wave: dict[int, _Speculation] = {}
        self._previous: PassState | None = None
        #: telemetry: worker solves adopted / discarded across the run.
        self.adopted = 0
        self.discarded = 0

    # -- pool -----------------------------------------------------------

    def _submit(self, work: LayerWork) -> Future | None:
        if self._broken:
            return None
        try:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.jobs)
            return self._pool.submit(solve_layer_work, work)
        except Exception:
            # No usable worker pool (restricted environment, pickling
            # failure, ...): degrade to fully sequential behavior.
            self._broken = True
            return None

    def close(self) -> None:
        self._cancel_wave()
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # -- per-pass lifecycle ---------------------------------------------

    def begin_pass(self, previous: PassState, uids: UidAllocator) -> None:
        """Simulate the upcoming pass and dispatch predicted solves."""
        self._previous = previous
        sim = PassState()
        sim.devices = dict(previous.devices)
        sim.born = dict(previous.born)
        sim.binding = dict(previous.binding)
        self._predict(sim, uids.clone(), start_index=0)

    def end_pass(self) -> None:
        self._cancel_wave()
        self._previous = None

    def _cancel_wave(self) -> None:
        self._discard(self._wave)
        self._wave = {}

    @staticmethod
    def _discard(wave: dict[int, "_Speculation"]) -> None:
        for speculation in wave.values():
            if speculation.future is not None:
                speculation.future.cancel()
        wave.clear()

    # -- speculation ----------------------------------------------------

    def _predict(
        self, sim: PassState, sim_uids: UidAllocator, start_index: int
    ) -> None:
        """(Re)build the wave: simulate layers from ``start_index`` on.

        ``sim`` must reflect the true pass state *before* ``start_index``'s
        layer runs; ``sim_uids`` must sit at the true allocator position.
        """
        from .pipeline import prepare_layer_problem, rebase_warm_result

        # Keep in-flight futures whose predicted problem is unchanged — a
        # divergence in one layer often leaves later layers' problems
        # intact, and a cancelled-but-running solve still burns a core.
        stale = self._wave
        self._wave = {}
        previous = self._previous
        if previous is None:
            self._discard(stale)
            return
        for layer in self.layering.layers[start_index:]:
            prev_result = previous.results.get(layer.index)
            if prev_result is None:
                break
            problem = prepare_layer_problem(
                self.assay,
                self.layering,
                self.spec,
                self.transport,
                sim,
                layer,
                resynthesis=True,
            )
            strict_key = strict_fingerprint_layer_problem(problem, self.spec)

            entry = (
                self.cache.entry(problem, self.spec)
                if self.cache is not None
                else None
            )
            if entry is not None:
                # The driver will replay this from the cache; simulate that
                # replay exactly (same materialization code, cloned uids).
                assumed = materialize_layer_result(entry, problem, sim_uids)
                speculation = _Speculation(strict_key, None, assumed)
            else:
                warm_from = rebase_warm_result(
                    prev_result, problem.fixed_devices, previous.devices
                )
                if warm_from is None:
                    # Earlier layers changed the device mix; the previous
                    # solution cannot carry over, so this layer (and its
                    # posteriors) cannot be predicted.
                    break
                assumed = rename_new_devices(warm_from, sim_uids)
                kept = stale.pop(layer.index, None)
                if (
                    kept is not None
                    and kept.future is not None
                    and kept.strict_key == strict_key
                ):
                    future = kept.future
                else:
                    if kept is not None and kept.future is not None:
                        kept.future.cancel()
                    future = self._submit(
                        LayerWork(
                            strict_key=strict_key,
                            problem=problem,
                            spec=self.spec,
                            warm_from=warm_from,
                        )
                    )
                if future is None:
                    break
                speculation = _Speculation(strict_key, future, assumed)
            self._wave[layer.index] = speculation
            _apply_assumed(sim, layer.index, assumed)
        self._discard(stale)

    # -- driver hooks ---------------------------------------------------

    def take(
        self, problem: LayerProblem, allocate_uid: Callable[[], str]
    ) -> LayerSolveResult | None:
        """Adopt the speculative solve for ``problem``, if it is exact.

        The wave entry is left in place either way — :meth:`observe`
        consumes it after the layer's result (adopted or inline) has been
        applied, to decide whether the rest of the wave stays valid.
        """
        speculation = self._wave.get(problem.layer_index)
        if speculation is None or speculation.future is None:
            return None
        actual_key = strict_fingerprint_layer_problem(problem, self.spec)
        if actual_key != speculation.strict_key:
            self.discarded += 1
            return None
        outcome = self._await(speculation.future)
        if outcome is None or outcome[0] != "ok":
            self.discarded += 1
            return None
        _tag, entry, stats = outcome
        result = materialize_layer_result(entry, problem, allocate_uid)
        if isinstance(stats, SolveStats):
            stats.speculative = True
            stats.cache_hit = False
            result.stats = stats
        self.adopted += 1
        return result

    def _await(self, future: Future):
        try:
            return future.result()
        except Exception:
            # Worker or pool died: solve inline from here on.
            self._broken = True
            return None

    def observe(
        self,
        layer_index: int,
        applied: LayerSolveResult,
        state: PassState,
        uids: UidAllocator,
    ) -> None:
        """Validate the pass simulation against what actually happened.

        If the applied result matches what the simulation assumed (same
        binding, same new devices — the only features later layer problems
        can see), the remaining wave stays valid.  Otherwise the wave is
        rebuilt from the true state.
        """
        speculation = self._wave.pop(layer_index, None)
        # ``take`` already popped adopted/declined entries; a remaining one
        # means the layer was replayed from the cache or solved inline.
        if speculation is not None and speculation.future is not None:
            speculation.future.cancel()
        assumed = speculation.assumed if speculation is not None else None
        if assumed is not None and _same_outcome(assumed, applied):
            return
        next_index = self._position_after(layer_index)
        if next_index is None:
            self._cancel_wave()
            return
        self._predict(state.clone(), uids.clone(), next_index)

    def _position_after(self, layer_index: int) -> int | None:
        layers = self.layering.layers
        for position, layer in enumerate(layers):
            if layer.index == layer_index:
                return position + 1 if position + 1 < len(layers) else None
        return None


def _apply_assumed(
    sim: PassState, layer_index: int, assumed: LayerSolveResult
) -> None:
    from .pipeline import apply_layer_result

    apply_layer_result(sim, layer_index, assumed)


def _same_outcome(assumed: LayerSolveResult, applied: LayerSolveResult) -> bool:
    """Whether two layer results are indistinguishable to later layers.

    Later problems read a layer's result only through its binding and its
    new devices (uids and configurations) — start times never propagate.
    """
    if assumed.binding != applied.binding:
        return False
    def tokens(result: LayerSolveResult):
        return [
            (
                d.uid,
                d.container,
                d.capacity,
                frozenset(d.accessories),
                d.signature,
            )
            for d in result.new_devices
        ]

    return tokens(assumed) == tokens(applied)


__all__ = [
    "LayerWork",
    "PassSpeculator",
    "solve_layer_work",
    "_CachedSolve",
]
