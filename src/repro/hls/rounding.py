"""Deterministic rounding of a layer LP relaxation into a schedule guide.

The LP relaxation of the layer ILP assigns fractional values to the
binding (``od``), configuration (``conf``/``acc``/``sig``) and usage
(``used``) binaries.  :func:`derive_rounding_guide` rounds them into a
:class:`RoundingGuide` — a preferred device per operation and a concrete
device configuration per slot — which the greedy list scheduler
(:func:`repro.hls.heuristic.schedule_layer_greedy`) honors whenever doing
so keeps the schedule feasible.  Every rounding decision is an argmax
with first-wins tie breaking over the model's insertion order, so the
same LP solution always rounds to the same guide.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..devices.device import BindingMode
from .milp_model import LEGAL_COMBOS, LayerModel, _realized_combo, is_slot


@dataclass
class RoundingGuide:
    """Rounded LP decisions for one layer.

    ``choice`` maps an operation uid to its preferred binding: a fixed
    device uid (str) or a new-slot index (int).  ``slot_config`` maps a
    slot index to the ``(container, capacity, accessories, signature)``
    template the slot should materialize as.
    """

    choice: dict[str, "str | int"] = field(default_factory=dict)
    slot_config: dict[int, tuple] = field(default_factory=dict)


def derive_rounding_guide(
    layer_model: LayerModel, values: dict
) -> RoundingGuide:
    """Round fractional LP ``values`` over ``layer_model`` into a guide."""
    problem = layer_model.problem
    mode = layer_model.spec.binding_mode

    def val(var) -> float:
        return float(values.get(var, 0.0)) if var is not None else 0.0

    # Per-op binding: argmax over the op's legal device keys, first-max
    # wins (od insertion order follows the model build, so this is stable).
    op_keys: dict[str, list] = {}
    for uid, key in layer_model.od:
        op_keys.setdefault(uid, []).append(key)

    choice: dict[str, "str | int"] = {}
    slot_members: dict[int, list] = {}
    for op in problem.ops:
        keys = op_keys.get(op.uid)
        if not keys:
            continue
        best_key = max(keys, key=lambda k: val(layer_model.od[op.uid, k]))
        if is_slot(best_key):
            slot = best_key[1]
            choice[op.uid] = slot
            slot_members.setdefault(slot, []).append(op)
        else:
            choice[op.uid] = best_key

    # Per-slot configuration template.
    slot_config: dict[int, tuple] = {}
    for j in range(problem.free_slots):
        members = slot_members.get(j, [])
        if not members and val(layer_model.used.get(j)) < 0.5:
            continue
        if mode is BindingMode.EXACT:
            member_sigs = {op.requirement_signature() for op in members}
            if len(member_sigs) == 1:
                signature = next(iter(member_sigs))
            else:
                candidates = [s for (jj, s) in layer_model.sig if jj == j]
                if not candidates:
                    continue
                signature = max(
                    candidates, key=lambda s: val(layer_model.sig[j, s])
                )
            kind, capacity = _realized_combo(signature)
            accessories = frozenset(signature[2])
        else:
            allowed = [
                combo for combo in LEGAL_COMBOS
                if all(
                    combo[0] in op.allowed_container_kinds
                    and combo[1] is op.capacity
                    for op in members
                )
            ]
            if not allowed:
                allowed = list(LEGAL_COMBOS)
            kind, capacity = max(
                allowed, key=lambda combo: val(layer_model.conf.get((j, *combo)))
            )
            accessories = {
                name
                for (jj, name) in layer_model.acc
                if jj == j and val(layer_model.acc[jj, name]) >= 0.5
            }
            for op in members:
                accessories |= op.accessories
            accessories = frozenset(accessories)
            signature = None
        slot_config[j] = (kind, capacity, accessories, signature)

    return RoundingGuide(choice=choice, slot_config=slot_config)


__all__ = ["RoundingGuide", "derive_rounding_guide"]
