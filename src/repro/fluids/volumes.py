"""Volume ranges behind the capacity classes.

Defaults follow typical continuous-flow geometry (nanoliter scale):
chambers hold single-digit to tens of nanoliters; rotary mixers reach the
hundreds [paper refs 8, 12].  All ranges are user-overridable through
:class:`VolumeModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..components.containers import Capacity
from ..errors import SpecificationError

#: default volume range per capacity class, in nanoliters: [min, max).
CAPACITY_RANGES: dict[Capacity, tuple[float, float]] = {
    Capacity.TINY: (0.0, 5.0),
    Capacity.SMALL: (5.0, 25.0),
    Capacity.MEDIUM: (25.0, 100.0),
    Capacity.LARGE: (100.0, 500.0),
}


def volume_range(capacity: Capacity) -> tuple[float, float]:
    """The [min, max) nanoliter range of a capacity class."""
    return CAPACITY_RANGES[capacity]


def capacity_for_volume(nanoliters: float) -> Capacity:
    """Smallest capacity class that holds ``nanoliters``."""
    if nanoliters < 0:
        raise SpecificationError(f"negative volume {nanoliters}")
    for capacity in (
        Capacity.TINY, Capacity.SMALL, Capacity.MEDIUM, Capacity.LARGE
    ):
        lo, hi = CAPACITY_RANGES[capacity]
        if nanoliters < hi:
            return capacity
    raise SpecificationError(
        f"volume {nanoliters} nl exceeds the largest container "
        f"({CAPACITY_RANGES[Capacity.LARGE][1]} nl)"
    )


@dataclass
class VolumeModel:
    """User-adjustable volume ranges per capacity class."""

    ranges: dict[Capacity, tuple[float, float]] = field(
        default_factory=lambda: dict(CAPACITY_RANGES)
    )

    def __post_init__(self) -> None:
        previous_hi = 0.0
        for capacity in (
            Capacity.TINY, Capacity.SMALL, Capacity.MEDIUM, Capacity.LARGE
        ):
            if capacity not in self.ranges:
                raise SpecificationError(f"missing range for {capacity.value}")
            lo, hi = self.ranges[capacity]
            if lo < 0 or hi <= lo:
                raise SpecificationError(
                    f"invalid range for {capacity.value}: [{lo}, {hi})"
                )
            if lo != previous_hi:
                raise SpecificationError(
                    f"ranges must tile contiguously; {capacity.value} "
                    f"starts at {lo}, expected {previous_hi}"
                )
            previous_hi = hi

    def capacity_for(self, nanoliters: float) -> Capacity:
        if nanoliters < 0:
            raise SpecificationError(f"negative volume {nanoliters}")
        for capacity in (
            Capacity.TINY, Capacity.SMALL, Capacity.MEDIUM, Capacity.LARGE
        ):
            if nanoliters < self.ranges[capacity][1]:
                return capacity
        raise SpecificationError(
            f"volume {nanoliters} nl exceeds the largest container"
        )

    def max_volume(self, capacity: Capacity) -> float:
        return self.ranges[capacity][1]
