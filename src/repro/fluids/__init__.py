"""Fluid-volume bookkeeping (domain substrate).

The paper's capacity classes (*large/medium/small/tiny*) abstract reagent
volumes.  This package makes the abstraction concrete: volume ranges per
class, inference of the right capacity class from physical volumes, and a
flow-conservation checker that walks an assay and verifies every
operation's output actually fits its children's containers — catching
protocol-description errors before synthesis runs.
"""

from .volumes import (
    CAPACITY_RANGES,
    VolumeModel,
    capacity_for_volume,
    volume_range,
)
from .flow import FlowCheckResult, VolumeSpec, check_volumes

__all__ = [
    "CAPACITY_RANGES",
    "VolumeModel",
    "capacity_for_volume",
    "volume_range",
    "FlowCheckResult",
    "VolumeSpec",
    "check_volumes",
]
