"""Volume flow checking over an assay DAG.

Given per-operation volume specifications (inputs drawn fresh from chip
ports, fractions of parent outputs consumed, output volume produced), the
checker verifies:

* every operation's working volume fits its declared capacity class;
* parents' outputs are not over-consumed (the fractions drawn by all
  children of an operation must not exceed 1);
* declared capacity classes are not wastefully large (warning-level
  finding: a smaller class would do).

This runs *before* synthesis — a protocol with inconsistent volumes cannot
bind correctly no matter how it is scheduled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SpecificationError
from ..operations.assay import Assay
from .volumes import VolumeModel


@dataclass(frozen=True)
class VolumeSpec:
    """Volume behaviour of one operation (nanoliters).

    ``fresh_input`` is reagent drawn from chip inlets; ``consumes`` maps a
    parent uid to the fraction (0..1] of that parent's output this
    operation takes; ``output`` is what it produces for its children.
    """

    fresh_input: float = 0.0
    consumes: dict[str, float] = field(default_factory=dict)
    output: float = 0.0

    def __post_init__(self) -> None:
        if self.fresh_input < 0 or self.output < 0:
            raise SpecificationError("volumes must be non-negative")
        for parent, fraction in self.consumes.items():
            if not 0 < fraction <= 1:
                raise SpecificationError(
                    f"consume fraction for {parent!r} must be in (0, 1], "
                    f"got {fraction}"
                )


@dataclass
class FlowCheckResult:
    """Findings of a volume check."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    #: computed peak working volume per operation.
    working_volume: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.errors


def check_volumes(
    assay: Assay,
    specs: dict[str, VolumeSpec],
    model: VolumeModel | None = None,
) -> FlowCheckResult:
    """Check volume consistency of ``assay`` (see module docstring)."""
    model = model or VolumeModel()
    result = FlowCheckResult()

    missing = set(assay.uids) - set(specs)
    for uid in sorted(missing):
        result.errors.append(f"{uid}: no volume specification")
    if missing:
        return result

    # Outputs first (topological), then consumption checks.
    produced: dict[str, float] = {}
    for uid in assay.topological_order():
        spec = specs[uid]
        incoming = 0.0
        for parent in assay.parents(uid):
            fraction = spec.consumes.get(parent)
            if fraction is None:
                result.errors.append(
                    f"{uid}: dependency on {parent} but no consume fraction"
                )
                continue
            incoming += fraction * produced.get(parent, 0.0)
        for named_parent in spec.consumes:
            if named_parent not in assay.parents(uid):
                result.errors.append(
                    f"{uid}: consumes {named_parent!r} without a dependency"
                )
        working = spec.fresh_input + incoming
        produced[uid] = spec.output
        result.working_volume[uid] = working

        op = assay[uid]
        cap_limit = model.max_volume(op.capacity)
        if working > cap_limit:
            result.errors.append(
                f"{uid}: working volume {working:g} nl exceeds its "
                f"{op.capacity.value} container ({cap_limit:g} nl)"
            )
        elif working > 0:
            fitting = model.capacity_for(working)
            if fitting.rank < op.capacity.rank:
                result.warnings.append(
                    f"{uid}: declared {op.capacity.value} but "
                    f"{fitting.value} would suffice ({working:g} nl)"
                )
        if spec.output > cap_limit:
            result.errors.append(
                f"{uid}: output {spec.output:g} nl exceeds its container"
            )

    # Over-consumption of parents.
    for uid in assay.uids:
        children = assay.children(uid)
        total = sum(
            specs[child].consumes.get(uid, 0.0) for child in children
        )
        if total > 1.0 + 1e-9:
            result.errors.append(
                f"{uid}: children consume {total:.2f}x its output"
            )
    return result
