"""Baseline synthesis methods for comparison (paper Sec. 5)."""

from .conventional import conventional_spec, synthesize_conventional
from .types import classify_by_function, classify_by_signature

__all__ = [
    "conventional_spec",
    "synthesize_conventional",
    "classify_by_function",
    "classify_by_signature",
]
