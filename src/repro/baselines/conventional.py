"""The modified conventional synthesis method (paper Sec. 5).

The paper compares against a conventional synthesizer upgraded just enough
to run the same benchmarks: operations and devices are classified by
component-requirement *signature* (instead of the obsolete functional
types), binding requires exact signature matches, and the layering +
progressive re-synthesis machinery is integrated as-is.  Everything else —
the ILP, the transport estimation, the objective — is shared with the
component-oriented method, so measured differences are attributable to the
binding concept alone.
"""

from __future__ import annotations

import dataclasses
import time

from ..devices.device import BindingMode
from ..hls.context import SynthesisContext
from ..hls.pipeline import SynthesisPipeline
from ..hls.spec import SynthesisSpec
from ..hls.synthesizer import SynthesisResult
from ..operations.assay import Assay


def conventional_spec(spec: SynthesisSpec) -> SynthesisSpec:
    """A copy of ``spec`` with the baseline's exact-matching binding rule."""
    return dataclasses.replace(spec, binding_mode=BindingMode.EXACT)


def synthesize_conventional(
    assay: Assay, spec: SynthesisSpec | None = None, jobs: int | None = None
) -> SynthesisResult:
    """Synthesize ``assay`` with the modified conventional method.

    Runs the *same* :class:`~repro.hls.pipeline.SynthesisPipeline` as
    :func:`repro.hls.synthesizer.synthesize` — no forked pass loop.  The
    only behavioral difference is the binding-legality predicate installed
    by :func:`conventional_spec` (exact signature matches instead of
    component cover), which every stage picks up through the shared
    context's spec.
    """
    spec = spec or SynthesisSpec()
    context = SynthesisContext(
        assay=assay,
        spec=conventional_spec(spec),
        jobs=jobs,
        started=time.monotonic(),
    )
    return SynthesisPipeline().run(context)
