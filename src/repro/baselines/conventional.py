"""The modified conventional synthesis method (paper Sec. 5).

The paper compares against a conventional synthesizer upgraded just enough
to run the same benchmarks: operations and devices are classified by
component-requirement *signature* (instead of the obsolete functional
types), binding requires exact signature matches, and the layering +
progressive re-synthesis machinery is integrated as-is.  Everything else —
the ILP, the transport estimation, the objective — is shared with the
component-oriented method, so measured differences are attributable to the
binding concept alone.
"""

from __future__ import annotations

import dataclasses

from ..devices.device import BindingMode
from ..hls.spec import SynthesisSpec
from ..hls.synthesizer import SynthesisResult, synthesize
from ..operations.assay import Assay


def conventional_spec(spec: SynthesisSpec) -> SynthesisSpec:
    """A copy of ``spec`` with the baseline's exact-matching binding rule."""
    return dataclasses.replace(spec, binding_mode=BindingMode.EXACT)


def synthesize_conventional(
    assay: Assay, spec: SynthesisSpec | None = None
) -> SynthesisResult:
    """Synthesize ``assay`` with the modified conventional method."""
    spec = spec or SynthesisSpec()
    return synthesize(assay, conventional_spec(spec))
