"""Operation/device type classification for the conventional baseline.

The original fluidic-instruction-set standard [2] classifies operations and
devices by *functionality* (mix, heat, detect, ...).  The paper's evaluation
modifies it — "classifying operations and devices according to their
component requirements instead of functionality" — because the pure
functional standard cannot express modern operations at all.  Both
classifications are provided here: functional classes for display and
analysis, signature classes as the actual binding domain of the baseline.
"""

from __future__ import annotations

from collections import defaultdict

from ..operations.assay import Assay
from ..operations.operation import Operation


def classify_by_function(assay: Assay) -> dict[str, list[Operation]]:
    """Group operations by their ``function`` label.

    Unlabeled operations group under ``"(unspecified)"``.
    """
    groups: dict[str, list[Operation]] = defaultdict(list)
    for op in assay:
        groups[op.function or "(unspecified)"].append(op)
    return dict(groups)


def classify_by_signature(assay: Assay) -> dict[tuple, list[Operation]]:
    """Group operations by component-requirement signature.

    Each distinct signature is one "type" of the modified conventional
    method: a device instantiated for the type serves only operations of the
    same type (exact matching).
    """
    groups: dict[tuple, list[Operation]] = defaultdict(list)
    for op in assay:
        groups[op.requirement_signature()].append(op)
    return dict(groups)


def signature_label(signature: tuple) -> str:
    """Compact human-readable form of a requirement signature."""
    container, capacity, accessories = signature
    kind = container or "any"
    acc = ",".join(accessories) if accessories else "-"
    return f"{kind}/{capacity}[{acc}]"
