"""Table 2 — synthesis results for the three bioassays.

For every case, both methods run with the paper's published parameters:
``|D| = 25``, indeterminate threshold ``t = 10``.  Reported per method:
assay execution time (with symbolic ``I_k`` terms), number of applied
devices, number of transportation paths, and program runtime — the exact
columns of the paper's Table 2.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass

from ..assays import benchmark_assay
from ..baselines import synthesize_conventional
from ..hls import SynthesisSpec, synthesize
from ..hls.synthesizer import SynthesisResult

#: The paper's Table 2 values, for shape comparison in EXPERIMENTS.md.
PAPER_TABLE2 = {
    1: {"conv": ("225m", 3, 3), "ours": ("220m", 2, 2)},
    2: {"conv": ("277m+I_1", 24, 82), "ours": ("244m+I_1", 21, 33)},
    3: {"conv": ("603m+I_1+I_2", 24, 95), "ours": ("492m+I_1+I_2", 24, 85)},
}


@dataclass
class Table2Row:
    """One (case, method) row of Table 2."""

    case: int
    method: str  # "Conv." or "Our"
    num_ops: int
    num_indeterminate: int
    exe_time: str
    fixed_makespan: int
    num_devices: int
    num_paths: int
    runtime_seconds: float
    layer_statuses: list[str]

    @property
    def columns(self) -> tuple:
        return (
            self.case,
            self.method,
            self.exe_time,
            self.num_devices,
            self.num_paths,
            f"{self.runtime_seconds:.1f}s",
        )


def default_spec(time_limit: float = 20.0, max_iterations: int = 2) -> SynthesisSpec:
    """The paper's experiment parameters (|D|=25, t=10)."""
    return SynthesisSpec(
        max_devices=25,
        threshold=10,
        time_limit=time_limit,
        max_iterations=max_iterations,
    )


def _row(case: int, method: str, result: SynthesisResult, elapsed: float) -> Table2Row:
    return Table2Row(
        case=case,
        method=method,
        num_ops=len(result.assay),
        num_indeterminate=result.assay.num_indeterminate,
        exe_time=result.makespan_expression,
        fixed_makespan=result.fixed_makespan,
        num_devices=result.num_devices,
        num_paths=result.num_paths,
        runtime_seconds=elapsed,
        layer_statuses=list(result.history[-1].layer_statuses),
    )


def run_case(
    case: int, spec: SynthesisSpec | None = None, jobs: int | None = None
) -> tuple[Table2Row, Table2Row]:
    """Run one benchmark case; returns (conventional row, our row).

    ``jobs`` fans re-synthesis layer solves across that many worker
    processes (``None`` inherits ``spec.jobs``); results are identical
    either way.
    """
    spec = spec or default_spec()
    assay = benchmark_assay(case)

    started = time.monotonic()
    conv = synthesize_conventional(assay, spec, jobs=jobs)
    conv_row = _row(case, "Conv.", conv, time.monotonic() - started)

    started = time.monotonic()
    ours = synthesize(assay, spec, jobs=jobs)
    our_row = _row(case, "Our", ours, time.monotonic() - started)
    return conv_row, our_row


def run_table2(
    spec: SynthesisSpec | None = None,
    cases: tuple[int, ...] = (1, 2, 3),
    jobs: int | None = None,
) -> list[Table2Row]:
    """Run the full Table 2 experiment."""
    rows: list[Table2Row] = []
    for case in cases:
        conv_row, our_row = run_case(case, spec, jobs=jobs)
        rows.extend((conv_row, our_row))
    return rows


def scaled_spec(spec: SynthesisSpec, case: int) -> SynthesisSpec:
    """Give the large cases a larger per-layer solve budget (the paper's
    runtimes likewise grow from seconds to minutes across the cases)."""
    factor = {1: 1.0, 2: 1.5, 3: 2.0}.get(case, 1.0)
    return dataclasses.replace(spec, time_limit=spec.time_limit * factor)
