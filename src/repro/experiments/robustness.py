"""Monte-Carlo robustness analysis of hybrid schedules.

The paper argues hybrid scheduling beats both extremes: purely static
schedules must reserve worst-case slots for indeterminate operations, and
purely reactive execution cannot reserve devices for time-critical steps.
This harness quantifies the static comparison: it simulates many runs of a
hybrid schedule under a retry model and contrasts the realized makespan
distribution with the static worst-case reservation.

Runs may fail (``on_exhausted="fail"``, or injected faults).  Failed runs
truncate at the failing layer, so their shorter makespans are *excluded*
from the distribution — mixing them in would bias ``mean``/``best``
downward exactly when the chip performs worst; instead they surface as
``failure_rate``.  Passing ``policies`` routes the simulation through the
cyberphysical :class:`~repro.cyberphysical.engine.ExecutionEngine`, so the
same comparison can be run under recovery policies rather than abort.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from ..hls.synthesizer import SynthesisResult
from ..runtime import RetryModel, execute_schedule


@dataclass(frozen=True)
class MakespanDistribution:
    """Summary statistics of simulated makespans (successful runs only)."""

    runs: int
    mean: float
    median: float
    p95: float
    worst: int
    best: int
    #: fraction of runs where at least one indeterminate op needed a retry.
    retry_rate: float
    #: the fixed (scheduled) part common to every run.
    scheduled: int
    #: fraction of runs that failed to complete the assay; failed runs are
    #: excluded from the distribution fields above.
    failure_rate: float = 0.0

    @property
    def mean_extra(self) -> float:
        """Average realized indeterminate tail time."""
        return self.mean - self.scheduled


def _summarize(
    makespans: list[int],
    runs: int,
    retried: int,
    failed: int,
    scheduled: int,
) -> MakespanDistribution:
    ordered = sorted(makespans)
    if ordered:
        mean = statistics.mean(ordered)
        median = statistics.median(ordered)
        p95 = ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]
        best, worst = ordered[0], ordered[-1]
    else:  # every run failed — nothing to summarize.
        mean = median = 0.0
        p95 = best = worst = 0
    return MakespanDistribution(
        runs=runs,
        mean=mean,
        median=median,
        p95=p95,
        worst=worst,
        best=best,
        retry_rate=retried / runs,
        scheduled=scheduled,
        failure_rate=failed / runs,
    )


def simulate_makespans(
    result: SynthesisResult,
    retry_model: RetryModel | None = None,
    runs: int = 100,
    seed: int = 0,
    policies=None,
    fault_plan=None,
) -> MakespanDistribution:
    """Run the executor ``runs`` times and summarize the makespans.

    With ``policies`` (a policy chain or an iterable of policy names) the
    runs go through the closed-loop engine instead of the one-shot
    executor, optionally under an injected ``fault_plan`` — recovered runs
    then count as successes.
    """
    retry_model = retry_model or RetryModel()
    if policies is not None or fault_plan is not None:
        return _simulate_with_recovery(
            result, retry_model, runs, seed, policies or (), fault_plan
        )
    makespans: list[int] = []
    retried = 0
    failed = 0
    for k in range(runs):
        report = execute_schedule(result.schedule, retry_model, seed=seed + k)
        if any(tries > 1 for tries in report.attempts.values()):
            retried += 1
        if not report.succeeded:
            failed += 1
            continue
        makespans.append(report.makespan)
    return _summarize(makespans, runs, retried, failed, result.fixed_makespan)


def _simulate_with_recovery(
    result: SynthesisResult,
    retry_model: RetryModel,
    runs: int,
    seed: int,
    policies,
    fault_plan,
) -> MakespanDistribution:
    from ..cyberphysical import (
        ExecutionEngine,
        FaultPlan,
        RetrySampler,
        build_policies,
    )

    if policies and all(isinstance(p, str) for p in policies):
        policies = build_policies(policies)
    chain = list(policies)
    makespans: list[int] = []
    retried = 0
    failed = 0
    for k in range(runs):
        engine = ExecutionEngine(
            result,
            policies=chain,
            fault_plan=fault_plan or FaultPlan(),
            sampler=RetrySampler(retry_model),
            seed=seed + k,
        )
        report = engine.run()
        if any(tries > 1 for tries in report.attempts.values()):
            retried += 1
        if not report.completed:
            failed += 1
            continue
        makespans.append(report.makespan)
    return _summarize(makespans, runs, retried, failed, result.fixed_makespan)


def static_worst_case(
    result: SynthesisResult, retry_model: RetryModel | None = None
) -> int:
    """Makespan a static scheduler must reserve: every indeterminate
    operation budgeted at ``max_attempts`` times its minimum duration."""
    retry_model = retry_model or RetryModel()
    total = result.fixed_makespan
    for layer in result.schedule.layers:
        ind = [p for p in layer.placements.values() if p.indeterminate]
        if ind:
            total += max(
                (retry_model.max_attempts - 1) * p.duration for p in ind
            )
    return total


def hybrid_advantage(
    result: SynthesisResult,
    retry_model: RetryModel | None = None,
    runs: int = 100,
    seed: int = 0,
    policies=None,
    fault_plan=None,
) -> float:
    """Average chip time the hybrid schedule saves vs static reservation.

    Returns a fraction in [0, 1); 0 when the assay has no indeterminate
    operations (both schedules are identical then).  ``policies`` and
    ``fault_plan`` pass through to :func:`simulate_makespans` so the
    advantage can be measured under recovery rather than abort.
    """
    retry_model = retry_model or RetryModel()
    static = static_worst_case(result, retry_model)
    if static <= 0:
        return 0.0
    dist = simulate_makespans(
        result,
        retry_model,
        runs=runs,
        seed=seed,
        policies=policies,
        fault_plan=fault_plan,
    )
    if dist.failure_rate >= 1.0:
        return 0.0
    return max(0.0, 1.0 - dist.mean / static)
