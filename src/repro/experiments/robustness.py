"""Monte-Carlo robustness analysis of hybrid schedules.

The paper argues hybrid scheduling beats both extremes: purely static
schedules must reserve worst-case slots for indeterminate operations, and
purely reactive execution cannot reserve devices for time-critical steps.
This harness quantifies the static comparison: it simulates many runs of a
hybrid schedule under a retry model and contrasts the realized makespan
distribution with the static worst-case reservation.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from ..hls.synthesizer import SynthesisResult
from ..runtime import RetryModel, execute_schedule


@dataclass(frozen=True)
class MakespanDistribution:
    """Summary statistics of simulated makespans."""

    runs: int
    mean: float
    median: float
    p95: float
    worst: int
    best: int
    #: fraction of runs where at least one indeterminate op needed a retry.
    retry_rate: float
    #: the fixed (scheduled) part common to every run.
    scheduled: int

    @property
    def mean_extra(self) -> float:
        """Average realized indeterminate tail time."""
        return self.mean - self.scheduled


def simulate_makespans(
    result: SynthesisResult,
    retry_model: RetryModel | None = None,
    runs: int = 100,
    seed: int = 0,
) -> MakespanDistribution:
    """Run the executor ``runs`` times and summarize the makespans."""
    retry_model = retry_model or RetryModel()
    makespans: list[int] = []
    retried = 0
    for k in range(runs):
        report = execute_schedule(result.schedule, retry_model, seed=seed + k)
        makespans.append(report.makespan)
        if any(tries > 1 for tries in report.attempts.values()):
            retried += 1
    ordered = sorted(makespans)
    return MakespanDistribution(
        runs=runs,
        mean=statistics.mean(makespans),
        median=statistics.median(makespans),
        p95=ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))],
        worst=max(makespans),
        best=min(makespans),
        retry_rate=retried / runs,
        scheduled=result.fixed_makespan,
    )


def static_worst_case(
    result: SynthesisResult, retry_model: RetryModel | None = None
) -> int:
    """Makespan a static scheduler must reserve: every indeterminate
    operation budgeted at ``max_attempts`` times its minimum duration."""
    retry_model = retry_model or RetryModel()
    total = result.fixed_makespan
    for layer in result.schedule.layers:
        ind = [p for p in layer.placements.values() if p.indeterminate]
        if ind:
            total += max(
                (retry_model.max_attempts - 1) * p.duration for p in ind
            )
    return total


def hybrid_advantage(
    result: SynthesisResult,
    retry_model: RetryModel | None = None,
    runs: int = 100,
    seed: int = 0,
) -> float:
    """Average chip time the hybrid schedule saves vs static reservation.

    Returns a fraction in [0, 1); 0 when the assay has no indeterminate
    operations (both schedules are identical then).
    """
    retry_model = retry_model or RetryModel()
    static = static_worst_case(result, retry_model)
    if static <= 0:
        return 0.0
    dist = simulate_makespans(result, retry_model, runs=runs, seed=seed)
    return max(0.0, 1.0 - dist.mean / static)
