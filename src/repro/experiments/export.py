"""CSV export of experiment rows (for external plotting tools)."""

from __future__ import annotations

import csv
import io
from pathlib import Path

from .table2 import Table2Row
from .table3 import Table3Row

TABLE2_FIELDS = (
    "case", "method", "num_ops", "num_indeterminate", "exe_time",
    "fixed_makespan", "num_devices", "num_paths", "runtime_seconds",
)


def table2_to_csv(rows: list[Table2Row]) -> str:
    """Render Table 2 rows as CSV text."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=TABLE2_FIELDS)
    writer.writeheader()
    for row in rows:
        writer.writerow({field: getattr(row, field) for field in TABLE2_FIELDS})
    return buffer.getvalue()


def table3_to_csv(rows: list[Table3Row]) -> str:
    """Render Table 3 trajectories as long-format CSV
    (case, iteration, exe_time, devices)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["case", "iteration", "exe_time", "devices"])
    for row in rows:
        for k, (exe, dev) in enumerate(zip(row.exe_times, row.devices)):
            writer.writerow([row.case, k, exe, dev])
    return buffer.getvalue()


def save_csv(text: str, path: "str | Path") -> None:
    Path(path).write_text(text)
