"""One-command regeneration of the paper's artifact set.

``python -m repro.experiments.paper --out artifacts`` runs Table 2 and
Table 3 (plus a small hybrid-advantage study) and writes:

* ``table2.txt`` / ``table2.csv``
* ``table3.txt`` / ``table3.csv``
* ``hybrid_advantage.txt``
* ``SUMMARY.md`` — the measured-vs-paper digest

``--budget fast`` scales the workloads down (2/4/6 pipelines, short time
limits) for a minutes-scale smoke reproduction; ``--budget full`` uses the
paper's sizes.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..assays import gene_expression_assay
from ..hls import SynthesisSpec, synthesize
from ..runtime import RetryModel
from .export import save_csv, table2_to_csv, table3_to_csv
from .report import format_table2, format_table3
from .robustness import simulate_makespans, static_worst_case
from .table2 import default_spec, run_table2
from .table3 import run_table3

_BUDGETS = {
    # (time limit seconds, max iterations)
    "fast": (6.0, 1),
    "full": (25.0, 2),
}


def regenerate(out_dir: "str | Path", budget: str = "fast") -> Path:
    """Run the experiment set; returns the output directory."""
    if budget not in _BUDGETS:
        raise ValueError(f"budget must be one of {sorted(_BUDGETS)}")
    time_limit, iterations = _BUDGETS[budget]
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    spec = default_spec(time_limit=time_limit, max_iterations=iterations)

    print(f"[paper] Table 2 (budget={budget}) ...", flush=True)
    t2_rows = run_table2(spec)
    (out / "table2.txt").write_text(format_table2(t2_rows))
    save_csv(table2_to_csv(t2_rows), out / "table2.csv")

    print("[paper] Table 3 ...", flush=True)
    t3_rows = run_table3(spec)
    (out / "table3.txt").write_text(format_table3(t3_rows))
    save_csv(table3_to_csv(t3_rows), out / "table3.csv")

    print("[paper] hybrid advantage study ...", flush=True)
    small = synthesize(
        gene_expression_assay(cells=4),
        SynthesisSpec(max_devices=12, threshold=4,
                      time_limit=time_limit, max_iterations=1),
    )
    retry = RetryModel(success_probability=0.53, max_attempts=10)
    dist = simulate_makespans(small, retry, runs=200)
    static = static_worst_case(small, retry)
    advantage_text = (
        f"hybrid mean {dist.mean:.1f}m (p95 {dist.p95}m) vs "
        f"static worst-case {static}m -> saves "
        f"{1 - dist.mean / static:.0%} of chip time"
    )
    (out / "hybrid_advantage.txt").write_text(advantage_text + "\n")

    summary = _summary(t2_rows, t3_rows, advantage_text, budget)
    (out / "SUMMARY.md").write_text(summary)
    print(f"[paper] artifacts written to {out}/")
    return out


def _summary(t2_rows, t3_rows, advantage_text: str, budget: str) -> str:
    lines = [
        "# Regenerated paper artifacts",
        "",
        f"Budget: `{budget}`. See EXPERIMENTS.md for the shape analysis.",
        "",
        "## Table 2",
        "```",
        format_table2(t2_rows),
        "```",
        "",
        "## Table 3",
        "```",
        format_table3(t3_rows),
        "```",
        "",
        "## Hybrid vs static (extension)",
        "",
        advantage_text,
        "",
        "## Shape checks",
        "",
    ]
    for case in (1, 2, 3):
        conv = next(r for r in t2_rows if r.case == case and r.method == "Conv.")
        ours = next(r for r in t2_rows if r.case == case and r.method == "Our")
        ok_time = ours.fixed_makespan <= conv.fixed_makespan
        ok_dev = ours.num_devices <= conv.num_devices
        lines.append(
            f"* case {case}: time {'OK' if ok_time else 'VIOLATED'} "
            f"({ours.fixed_makespan} <= {conv.fixed_makespan}), "
            f"devices {'OK' if ok_dev else 'VIOLATED'} "
            f"({ours.num_devices} <= {conv.num_devices})"
        )
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="regenerate the paper's tables and studies"
    )
    parser.add_argument("--out", default="artifacts")
    parser.add_argument("--budget", choices=sorted(_BUDGETS), default="fast")
    args = parser.parse_args(argv)
    regenerate(args.out, args.budget)
    return 0


if __name__ == "__main__":
    sys.exit(main())
