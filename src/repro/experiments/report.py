"""Row formatting matching the paper's table layout, plus solve profiles."""

from __future__ import annotations

import json

from ..errors import SerializationError
from ..hls.synthesizer import SynthesisResult
from ..ilp import SolveStats
from ..units import format_runtime
from .table2 import PAPER_TABLE2, Table2Row
from .table3 import PAPER_TABLE3, Table3Row


def format_table2(rows: list[Table2Row], include_paper: bool = True) -> str:
    """Render Table 2 rows as aligned text, optionally with paper values."""
    lines = [
        f"{'Case':<5} {'Method':<7} {'#Op':>4} {'#Ind':>5} "
        f"{'Exe.Time':<16} {'#D.':>4} {'#P.':>4} {'Runtime':>9}"
    ]
    for row in rows:
        lines.append(
            f"{row.case:<5} {row.method:<7} {row.num_ops:>4} "
            f"{row.num_indeterminate:>5} {row.exe_time:<16} "
            f"{row.num_devices:>4} {row.num_paths:>4} "
            f"{format_runtime(row.runtime_seconds):>9}"
        )
        if include_paper:
            key = "conv" if row.method.startswith("Conv") else "ours"
            exe, nd, np_ = PAPER_TABLE2[row.case][key]
            lines.append(
                f"{'':<5} {'(paper)':<7} {'':>4} {'':>5} {exe:<16} "
                f"{nd:>4} {np_:>4} {'':>9}"
            )
    return "\n".join(lines)


def format_table3(rows: list[Table3Row], include_paper: bool = True) -> str:
    """Render Table 3 rows as aligned text."""
    lines = [
        f"{'Case':<5} {'Metric':<9} "
        + " ".join(f"{label:>9}" for label in ("Initial", "1st Ite.", "2nd Ite."))
        + f" {'Improve':>9}"
    ]
    for row in rows:
        exe = row.exe_times + [None] * (3 - len(row.exe_times))
        dev = row.devices + [None] * (3 - len(row.devices))
        exe_cells = " ".join(
            f"{(str(v) + 'm') if v is not None else '-':>9}" for v in exe[:3]
        )
        dev_cells = " ".join(
            f"{v if v is not None else '-':>9}" for v in dev[:3]
        )
        lines.append(
            f"{row.case:<5} {'Exe.Time':<9} {exe_cells} "
            f"{row.total_improvement * 100:>8.2f}%"
        )
        lines.append(f"{'':<5} {'#D.':<9} {dev_cells} {'':>9}")
        if include_paper:
            paper = PAPER_TABLE3[row.case]
            paper_exe = " ".join(f"{v}m".rjust(9) for v in paper["exe"])
            paper_dev = " ".join(str(v).rjust(9) for v in paper["devices"])
            lines.append(f"{'':<5} {'(paper)':<9} {paper_exe} {'':>9}")
            lines.append(f"{'':<5} {'(paper)':<9} {paper_dev} {'':>9}")
    return "\n".join(lines)


def synthesis_profile(result: SynthesisResult) -> dict:
    """Solve telemetry of one synthesis run as a JSON-serializable dict.

    Per pass: the per-layer :class:`~repro.ilp.status.SolveStats` records;
    plus whole-run totals.  Round-trips through JSON —
    ``SolveStats.from_dict`` restores each layer record.
    """
    return {
        "assay": result.assay.name,
        "num_layers": result.layering.num_layers,
        "passes": [
            {
                "index": record.index,
                "label": record.label,
                "fixed_makespan": record.fixed_makespan,
                "cache_hits": record.cache_hits,
                "ilp_solves": record.ilp_solves,
                "speculative_solves": record.speculative_solves,
                "stage_timings": dict(record.stage_timings),
                "layers": [s.to_dict() for s in record.layer_stats],
            }
            for record in result.history
        ],
        "totals": {
            "passes": len(result.history),
            "cache_hits": result.cache_hits,
            "ilp_solves": result.ilp_solves,
            "speculative_solves": result.speculative_solves,
            "nodes": result.total_nodes,
            "simplex_iterations": sum(
                s.simplex_iterations for s in result.solve_stats
            ),
            "build_time": sum(s.build_time for s in result.solve_stats),
            "solve_time": result.total_solve_time,
            "runtime": result.runtime,
        },
    }


def format_profile(profile: dict) -> str:
    """Render a :func:`synthesis_profile` dict as an aligned text table."""
    lines = [
        f"{'pass':<9} {'layer':>5} {'backend':<9} {'status':<10} "
        f"{'cache':<5} {'warm':<4} {'nodes':>7} {'simplex':>8} "
        f"{'build':>8} {'solve':>8}"
    ]
    for record in profile["passes"]:
        for layer in record["layers"]:
            stats = SolveStats.from_dict(layer)
            source = "hit" if stats.cache_hit else "miss"
            if getattr(stats, "speculative", False):
                source = "spec"
            lines.append(
                f"{record['label']:<9} {stats.layer:>5} {stats.backend:<9} "
                f"{stats.status:<10} {source:<5} "
                f"{'yes' if stats.warm_started else 'no':<4} "
                f"{stats.nodes:>7} {stats.simplex_iterations:>8} "
                f"{stats.build_time:>7.3f}s {stats.solve_time:>7.3f}s"
            )
        timings = record.get("stage_timings") or {}
        if timings:
            cells = " ".join(
                f"{stage} {seconds:.3f}s" for stage, seconds in timings.items()
            )
            lines.append(f"{record['label']:<9} stages: {cells}")
    totals = profile["totals"]
    speculative = totals.get("speculative_solves", 0)
    speculative_note = (
        f", {speculative} speculative solve(s)" if speculative else ""
    )
    lines.append(
        f"totals: {totals['ilp_solves']} layer solve(s), "
        f"{totals['cache_hits']} cache hit(s){speculative_note}, "
        f"{totals['nodes']} node(s), "
        f"{totals['simplex_iterations']} simplex iteration(s), "
        f"build {totals['build_time']:.3f}s, solve {totals['solve_time']:.3f}s, "
        f"wall {format_runtime(totals['runtime'])}"
    )
    return "\n".join(lines)


def export_profiles(profiles: dict[int, dict], path: str) -> None:
    """Write per-case profiles to ``path`` as JSON (keyed by case)."""
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(
                {str(case): profile for case, profile in profiles.items()},
                handle,
                indent=2,
            )
            handle.write("\n")
    except OSError as exc:
        raise SerializationError(
            f"cannot write solve profiles to {path}: {exc}"
        ) from exc
