"""Row formatting matching the paper's table layout."""

from __future__ import annotations

from ..units import format_runtime
from .table2 import PAPER_TABLE2, Table2Row
from .table3 import PAPER_TABLE3, Table3Row


def format_table2(rows: list[Table2Row], include_paper: bool = True) -> str:
    """Render Table 2 rows as aligned text, optionally with paper values."""
    lines = [
        f"{'Case':<5} {'Method':<7} {'#Op':>4} {'#Ind':>5} "
        f"{'Exe.Time':<16} {'#D.':>4} {'#P.':>4} {'Runtime':>9}"
    ]
    for row in rows:
        lines.append(
            f"{row.case:<5} {row.method:<7} {row.num_ops:>4} "
            f"{row.num_indeterminate:>5} {row.exe_time:<16} "
            f"{row.num_devices:>4} {row.num_paths:>4} "
            f"{format_runtime(row.runtime_seconds):>9}"
        )
        if include_paper:
            key = "conv" if row.method.startswith("Conv") else "ours"
            exe, nd, np_ = PAPER_TABLE2[row.case][key]
            lines.append(
                f"{'':<5} {'(paper)':<7} {'':>4} {'':>5} {exe:<16} "
                f"{nd:>4} {np_:>4} {'':>9}"
            )
    return "\n".join(lines)


def format_table3(rows: list[Table3Row], include_paper: bool = True) -> str:
    """Render Table 3 rows as aligned text."""
    lines = [
        f"{'Case':<5} {'Metric':<9} "
        + " ".join(f"{label:>9}" for label in ("Initial", "1st Ite.", "2nd Ite."))
        + f" {'Improve':>9}"
    ]
    for row in rows:
        exe = row.exe_times + [None] * (3 - len(row.exe_times))
        dev = row.devices + [None] * (3 - len(row.devices))
        exe_cells = " ".join(
            f"{(str(v) + 'm') if v is not None else '-':>9}" for v in exe[:3]
        )
        dev_cells = " ".join(
            f"{v if v is not None else '-':>9}" for v in dev[:3]
        )
        lines.append(
            f"{row.case:<5} {'Exe.Time':<9} {exe_cells} "
            f"{row.total_improvement * 100:>8.2f}%"
        )
        lines.append(f"{'':<5} {'#D.':<9} {dev_cells} {'':>9}")
        if include_paper:
            paper = PAPER_TABLE3[row.case]
            paper_exe = " ".join(f"{v}m".rjust(9) for v in paper["exe"])
            paper_dev = " ".join(str(v).rjust(9) for v in paper["devices"])
            lines.append(f"{'':<5} {'(paper)':<9} {paper_exe} {'':>9}")
            lines.append(f"{'':<5} {'(paper)':<9} {paper_dev} {'':>9}")
    return "\n".join(lines)
