"""Row formatting matching the paper's table layout, plus solve profiles."""

from __future__ import annotations

import copy
import json
import math

from ..errors import SerializationError
from ..hls.synthesizer import SynthesisResult
from ..ilp import SolveStats
from ..units import format_runtime
from .table2 import PAPER_TABLE2, Table2Row
from .table3 import PAPER_TABLE3, Table3Row


def format_table2(rows: list[Table2Row], include_paper: bool = True) -> str:
    """Render Table 2 rows as aligned text, optionally with paper values."""
    lines = [
        f"{'Case':<5} {'Method':<7} {'#Op':>4} {'#Ind':>5} "
        f"{'Exe.Time':<16} {'#D.':>4} {'#P.':>4} {'Runtime':>9}"
    ]
    for row in rows:
        lines.append(
            f"{row.case:<5} {row.method:<7} {row.num_ops:>4} "
            f"{row.num_indeterminate:>5} {row.exe_time:<16} "
            f"{row.num_devices:>4} {row.num_paths:>4} "
            f"{format_runtime(row.runtime_seconds):>9}"
        )
        if include_paper:
            key = "conv" if row.method.startswith("Conv") else "ours"
            exe, nd, np_ = PAPER_TABLE2[row.case][key]
            lines.append(
                f"{'':<5} {'(paper)':<7} {'':>4} {'':>5} {exe:<16} "
                f"{nd:>4} {np_:>4} {'':>9}"
            )
    return "\n".join(lines)


def format_table3(rows: list[Table3Row], include_paper: bool = True) -> str:
    """Render Table 3 rows as aligned text."""
    lines = [
        f"{'Case':<5} {'Metric':<9} "
        + " ".join(f"{label:>9}" for label in ("Initial", "1st Ite.", "2nd Ite."))
        + f" {'Improve':>9}"
    ]
    for row in rows:
        exe = row.exe_times + [None] * (3 - len(row.exe_times))
        dev = row.devices + [None] * (3 - len(row.devices))
        exe_cells = " ".join(
            f"{(str(v) + 'm') if v is not None else '-':>9}" for v in exe[:3]
        )
        dev_cells = " ".join(
            f"{v if v is not None else '-':>9}" for v in dev[:3]
        )
        lines.append(
            f"{row.case:<5} {'Exe.Time':<9} {exe_cells} "
            f"{row.total_improvement * 100:>8.2f}%"
        )
        lines.append(f"{'':<5} {'#D.':<9} {dev_cells} {'':>9}")
        if include_paper:
            paper = PAPER_TABLE3[row.case]
            paper_exe = " ".join(f"{v}m".rjust(9) for v in paper["exe"])
            paper_dev = " ".join(str(v).rjust(9) for v in paper["devices"])
            lines.append(f"{'':<5} {'(paper)':<9} {paper_exe} {'':>9}")
            lines.append(f"{'':<5} {'(paper)':<9} {paper_dev} {'':>9}")
    return "\n".join(lines)


def _finite(value: float) -> float:
    """Clamp NaN/inf to 0.0 — ``json.dump`` would otherwise emit the
    non-standard tokens ``NaN``/``Infinity``, i.e. invalid JSON."""
    return float(value) if math.isfinite(value) else 0.0


def _finite_or_none(value: "float | None") -> "float | None":
    """Like :func:`_finite`, but for nullable certificates: an absent or
    non-finite bound/gap is ``None`` (JSON ``null``) — never clamped to
    0.0, which would read as "proven optimal"."""
    if value is None or not math.isfinite(value):
        return None
    return float(value)


def synthesis_profile(result: SynthesisResult) -> dict:
    """Solve telemetry of one synthesis run as a JSON-serializable dict.

    Per pass: the per-layer :class:`~repro.ilp.status.SolveStats` records;
    plus whole-run totals.  Round-trips through JSON —
    ``SolveStats.from_dict`` restores each layer record.  Always valid
    JSON, including runs where a pass (or the whole run) performed zero
    solves: means are guarded and non-finite floats are clamped.
    """
    solves = result.ilp_solves
    total_solve_time = _finite(result.total_solve_time)
    return {
        "assay": result.assay.name,
        "num_layers": result.layering.num_layers,
        "passes": [
            {
                "index": record.index,
                "label": record.label,
                "fixed_makespan": record.fixed_makespan,
                "cache_hits": record.cache_hits,
                "ilp_solves": record.ilp_solves,
                "speculative_solves": record.speculative_solves,
                "lower_bound": _finite_or_none(record.lower_bound),
                "integrality_gap": _finite_or_none(record.integrality_gap),
                "stage_timings": dict(record.stage_timings),
                "layers": [s.to_dict() for s in record.layer_stats],
            }
            for record in result.history
        ],
        "totals": {
            "passes": len(result.history),
            "cache_hits": result.cache_hits,
            "ilp_solves": result.ilp_solves,
            "speculative_solves": result.speculative_solves,
            "lower_bound": _finite_or_none(result.lower_bound),
            "integrality_gap": _finite_or_none(result.integrality_gap),
            "nodes": result.total_nodes,
            "simplex_iterations": sum(
                s.simplex_iterations for s in result.solve_stats
            ),
            "build_time": _finite(
                sum(s.build_time for s in result.solve_stats)
            ),
            "encode_time": _finite(
                sum(s.encode_time for s in result.solve_stats)
            ),
            "solve_time": total_solve_time,
            "mean_solve_time": (
                _finite(total_solve_time / solves) if solves else 0.0
            ),
            "runtime": _finite(result.runtime),
        },
    }


#: Profile keys (per layer / totals) that record wall-clock time and
#: therefore differ between byte-identical solves.
_VOLATILE_LAYER_KEYS = ("build_time", "encode_time", "solve_time")
_VOLATILE_TOTAL_KEYS = (
    "build_time", "encode_time", "solve_time", "mean_solve_time", "runtime",
)


def deterministic_profile(profile: dict) -> dict:
    """A copy of a :func:`synthesis_profile` dict with wall-clock fields
    zeroed, so identical solves serialize byte-identically — the contract
    behind ``table3 --deterministic`` and ``table3 --via-server``."""
    out = copy.deepcopy(profile)
    for record in out.get("passes", []):
        record["stage_timings"] = {}
        for layer in record.get("layers", []):
            for key in _VOLATILE_LAYER_KEYS:
                if key in layer:
                    layer[key] = 0.0
    totals = out.get("totals", {})
    for key in _VOLATILE_TOTAL_KEYS:
        if key in totals:
            totals[key] = 0.0
    return out


def _format_bound(value: "float | None") -> str:
    """A bound cell: ``-`` for absent or non-finite values (a NaN/inf
    certificate proves nothing and must not render as a number)."""
    if value is None or not math.isfinite(value):
        return "-"
    return f"{value:.1f}"


def _format_gap(value: "float | None") -> str:
    """A gap cell, guarded like :func:`_format_bound`."""
    if value is None or not math.isfinite(value):
        return "-"
    return f"{value * 100:.1f}%"


def format_profile(profile: dict) -> str:
    """Render a :func:`synthesis_profile` dict as an aligned text table."""
    lines = [
        f"{'pass':<9} {'layer':>5} {'backend':<9} {'status':<10} "
        f"{'cache':<5} {'warm':<4} {'nodes':>7} {'simplex':>8} "
        f"{'build':>8} {'encode':>8} {'solve':>8} {'bound':>9} {'gap':>6}"
    ]
    for record in profile.get("passes", []):
        for layer in record.get("layers", []):
            stats = SolveStats.from_dict(layer)
            source = "hit" if stats.cache_hit else "miss"
            if getattr(stats, "speculative", False):
                source = "spec"
            lines.append(
                f"{record['label']:<9} {stats.layer:>5} {stats.backend:<9} "
                f"{stats.status:<10} {source:<5} "
                f"{'yes' if stats.warm_started else 'no':<4} "
                f"{stats.nodes:>7} {stats.simplex_iterations:>8} "
                f"{stats.build_time:>7.3f}s {stats.encode_time:>7.3f}s "
                f"{stats.solve_time:>7.3f}s "
                f"{_format_bound(stats.lower_bound):>9} "
                f"{_format_gap(stats.integrality_gap):>6}"
            )
        timings = record.get("stage_timings") or {}
        if timings:
            cells = " ".join(
                f"{stage} {seconds:.3f}s" for stage, seconds in timings.items()
            )
            lines.append(f"{record['label']:<9} stages: {cells}")
    totals = profile.get("totals") or {}
    speculative = totals.get("speculative_solves", 0)
    speculative_note = (
        f", {speculative} speculative solve(s)" if speculative else ""
    )
    gap = totals.get("integrality_gap")
    certified_note = (
        f", certified gap {_format_gap(gap)}" if gap is not None else ""
    )
    lines.append(
        f"totals: {totals.get('ilp_solves', 0)} layer solve(s), "
        f"{totals.get('cache_hits', 0)} cache hit(s){speculative_note}, "
        f"{totals.get('nodes', 0)} node(s), "
        f"{totals.get('simplex_iterations', 0)} simplex iteration(s), "
        f"build {totals.get('build_time', 0.0):.3f}s, "
        f"encode {totals.get('encode_time', 0.0):.3f}s, "
        f"solve {totals.get('solve_time', 0.0):.3f}s, "
        f"wall {format_runtime(totals.get('runtime', 0.0))}"
        f"{certified_note}"
    )
    return "\n".join(lines)


def export_profiles(profiles: dict[int, dict], path: str) -> None:
    """Write per-case profiles to ``path`` as JSON (keyed by case)."""
    try:
        with open(path, "w", encoding="utf-8") as handle:
            # allow_nan=False: refuse to write the non-standard
            # NaN/Infinity tokens rather than emit unparseable JSON.
            json.dump(
                {str(case): profile for case, profile in profiles.items()},
                handle,
                indent=2,
                allow_nan=False,
            )
            handle.write("\n")
    except (OSError, ValueError) as exc:
        raise SerializationError(
            f"cannot write solve profiles to {path}: {exc}"
        ) from exc
