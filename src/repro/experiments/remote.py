"""Run the paper's table experiments through the synthesis service.

``table2 --via-server HOST:PORT`` / ``table3 --via-server HOST:PORT``
submit every (case, method) run as a job and rebuild the table rows from
the returned :func:`~repro.io.json_io.result_to_json` payloads.  The
row-construction logic mirrors :mod:`~repro.experiments.table2` /
:mod:`~repro.experiments.table3` exactly, so the rendered tables are
byte-identical to a direct in-process run (given deterministic solves,
e.g. a pinned MIP gap) — the property the ``service-smoke`` CI job
diffs.  What changes is *where* the solving happens: repeated
invocations are answered from the server's persistent store without
re-entering the synthesis pipeline.
"""

from __future__ import annotations

from typing import Any

from ..assays import benchmark_assay
from ..hls import SynthesisSpec
from ..service.client import ServiceClient
from .table2 import Table2Row, default_spec
from .table3 import Table3Row


def _payload_runtime(payload: dict[str, Any]) -> float:
    """Server-side wall time of the job (0.0 for store-served payloads)."""
    job = payload.get("job") or {}
    started = job.get("started_at")
    finished = job.get("finished_at")
    if started and finished:
        return max(0.0, finished - started)
    return 0.0


def _synthesize_remote(
    client: ServiceClient, case: int, spec: SynthesisSpec, method: str,
    deadline: float,
) -> dict[str, Any]:
    return client.synthesize(
        benchmark_assay(case), spec, method=method, deadline=deadline
    )


def _table2_row(
    case: int, method: str, payload: dict[str, Any]
) -> Table2Row:
    # Mirrors table2._row, reading the result report instead of the
    # in-process SynthesisResult.
    assay = benchmark_assay(case)
    report = payload["result"]
    history = report.get("history", [])
    return Table2Row(
        case=case,
        method=method,
        num_ops=len(assay),
        num_indeterminate=assay.num_indeterminate,
        exe_time=report["makespan"],
        fixed_makespan=report["fixed_makespan"],
        num_devices=report["num_devices"],
        num_paths=report["num_paths"],
        runtime_seconds=_payload_runtime(payload),
        layer_statuses=list(history[-1]["layer_statuses"]) if history else [],
    )


def run_case_via_server(
    client: ServiceClient,
    case: int,
    spec: SynthesisSpec | None = None,
    deadline: float = 3600.0,
) -> tuple[Table2Row, Table2Row]:
    """One benchmark case through the service: (conventional, ours)."""
    spec = spec or default_spec()
    conv = _synthesize_remote(client, case, spec, "conventional", deadline)
    ours = _synthesize_remote(client, case, spec, "hls", deadline)
    return (
        _table2_row(case, "Conv.", conv),
        _table2_row(case, "Our", ours),
    )


def run_table2_via_server(
    client: ServiceClient,
    spec: SynthesisSpec | None = None,
    cases: tuple[int, ...] = (1, 2, 3),
    deadline: float = 3600.0,
) -> list[Table2Row]:
    rows: list[Table2Row] = []
    for case in cases:
        rows.extend(run_case_via_server(client, case, spec, deadline))
    return rows


def run_table3_case_via_server(
    client: ServiceClient,
    case: int,
    spec: SynthesisSpec | None = None,
    deadline: float = 3600.0,
) -> Table3Row:
    """Progressive re-synthesis trajectory for one case, via the service.

    Best-so-far accumulation matches
    :func:`repro.experiments.table3.run_table3_case` line for line.
    """
    spec = spec or default_spec()
    payload = _synthesize_remote(client, case, spec, "hls", deadline)
    exe_best: list[int] = []
    dev_best: list[int] = []
    for record in payload["result"].get("history", []):
        if not exe_best or record["fixed_makespan"] < exe_best[-1]:
            exe_best.append(record["fixed_makespan"])
            dev_best.append(record["num_devices"])
        else:
            exe_best.append(exe_best[-1])
            dev_best.append(dev_best[-1])
    return Table3Row(
        case=case,
        exe_times=exe_best,
        devices=dev_best,
        profile=payload.get("profile", {}),
    )


def run_table3_via_server(
    client: ServiceClient,
    spec: SynthesisSpec | None = None,
    cases: tuple[int, ...] = (2, 3),
    deadline: float = 3600.0,
) -> list[Table3Row]:
    return [
        run_table3_case_via_server(client, case, spec, deadline)
        for case in cases
    ]


__all__ = [
    "run_case_via_server",
    "run_table2_via_server",
    "run_table3_case_via_server",
    "run_table3_via_server",
]
