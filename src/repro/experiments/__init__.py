"""Experiment harnesses regenerating the paper's tables."""

from .report import (
    deterministic_profile,
    export_profiles,
    format_profile,
    format_table2,
    format_table3,
    synthesis_profile,
)
from .table2 import Table2Row, run_case, run_table2
from .table3 import Table3Row, run_table3, run_table3_case

__all__ = [
    "Table2Row",
    "run_case",
    "run_table2",
    "Table3Row",
    "run_table3",
    "run_table3_case",
    "format_table2",
    "format_table3",
    "synthesis_profile",
    "deterministic_profile",
    "format_profile",
    "export_profiles",
]
