"""Table 3 — improvement from progressive re-synthesis.

For the two cases with indeterminate operations (2 and 3), report the fixed
execution time and device count of the initial pass and of every
re-synthesis iteration, plus the relative improvement per iteration —
exactly the rows of the paper's Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..assays import benchmark_assay
from ..hls import SynthesisSpec, synthesize
from .table2 import default_spec

#: The paper's Table 3 values, for shape comparison in EXPERIMENTS.md.
PAPER_TABLE3 = {
    2: {"exe": (295, 247, 244), "devices": (21, 21, 21)},
    3: {"exe": (641, 530, 492), "devices": (24, 24, 24)},
}


@dataclass
class Table3Row:
    """Re-synthesis trajectory of one case."""

    case: int
    exe_times: list[int] = field(default_factory=list)
    devices: list[int] = field(default_factory=list)
    #: solve telemetry of the underlying synthesis run (see
    #: :func:`repro.experiments.report.synthesis_profile`).
    profile: dict = field(default_factory=dict)

    @property
    def improvements(self) -> list[float]:
        """Relative improvement of each iteration over its predecessor."""
        out = []
        for before, after in zip(self.exe_times, self.exe_times[1:]):
            out.append((before - after) / before if before else 0.0)
        return out

    @property
    def total_improvement(self) -> float:
        if not self.exe_times or not self.exe_times[0]:
            return 0.0
        return (self.exe_times[0] - min(self.exe_times)) / self.exe_times[0]


def run_table3_case(
    case: int, spec: SynthesisSpec | None = None, jobs: int | None = None
) -> Table3Row:
    """Progressive re-synthesis trajectory for one case.

    Reported as *best-so-far* per iteration: the synthesizer always keeps
    the best pass (a time-limited ILP incumbent can regress between
    passes), so the value after iteration k is the min over passes 0..k —
    the quantity the user actually obtains after k iterations.
    """
    from .report import synthesis_profile

    spec = spec or default_spec()
    result = synthesize(benchmark_assay(case), spec, jobs=jobs)
    exe_best: list[int] = []
    dev_best: list[int] = []
    for record in result.history:
        if not exe_best or record.fixed_makespan < exe_best[-1]:
            exe_best.append(record.fixed_makespan)
            dev_best.append(record.num_devices)
        else:
            exe_best.append(exe_best[-1])
            dev_best.append(dev_best[-1])
    return Table3Row(
        case=case,
        exe_times=exe_best,
        devices=dev_best,
        profile=synthesis_profile(result),
    )


def run_table3(
    spec: SynthesisSpec | None = None,
    cases: tuple[int, ...] = (2, 3),
    jobs: int | None = None,
) -> list[Table3Row]:
    return [run_table3_case(case, spec, jobs=jobs) for case in cases]
