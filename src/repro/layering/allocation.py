"""Dependency-based allocation — Algorithm 1, lines L12–L24 (Fig. 4).

A modified maximum-independent-set pass over the non-layered operation pool:
repeatedly pick an indeterminate operation with no indeterminate ancestor in
the pool, keep it, and push all of its descendants to later layers; finally
everything still in the pool joins the layer.  The result maximizes the
number of operations per layer while guaranteeing that every indeterminate
operation in the layer has no child in the same layer (so it can sit at the
very end of the sub-schedule, paper constraint (14)).
"""

from __future__ import annotations

from ..graphs import DiGraph


def dependency_based_allocation(
    pool_graph: DiGraph,
    indeterminate: set[str],
    rng_order: list[str] | None = None,
) -> set[str]:
    """Select the operations of the next layer from the pool.

    Args:
        pool_graph: dependency graph induced on the not-yet-layered
            operations (mutated: selected/deferred nodes are *not* removed —
            callers slice the pool themselves from the returned set).
        indeterminate: uids of indeterminate operations in the pool.
        rng_order: deterministic pick order for the "randomly choose" step
            of the paper; defaults to sorted order so runs are reproducible.

    Returns:
        The uids allocated to this layer.
    """
    graph = pool_graph.copy()
    remaining_ind = {uid for uid in indeterminate if uid in graph}
    selected_ind: list[str] = []

    order = rng_order or sorted(remaining_ind)
    queue = [uid for uid in order if uid in remaining_ind]

    while remaining_ind:
        chosen = None
        for uid in queue:
            if uid not in graph or uid not in remaining_ind:
                continue
            if not (graph.ancestors(uid) & remaining_ind):
                chosen = uid
                break
        if chosen is None:
            # Cannot happen on a DAG: some indeterminate op is minimal.
            chosen = next(iter(sorted(remaining_ind)))
        selected_ind.append(chosen)
        removed = graph.descendants(chosen) | {chosen}
        remaining_ind -= removed
        for uid in removed:
            if uid == chosen:
                continue
            graph.remove_node(uid)
        # ``chosen`` stays in the layer; detach it so its (already removed)
        # descendants do not resurface.
        graph.remove_node(chosen)

    layer = set(graph.nodes) | set(selected_ind)
    return layer
