"""Resource-based allocation — Algorithm 1, lines L25–L34 (Fig. 5).

When a layer holds more indeterminate operations than the threshold ``t``
(indeterminate operations all end their layer in parallel, so each needs its
own device), the cheapest ones are evicted to later layers.

The eviction cost of an indeterminate operation ``o_j`` is computed as a
minimum cut: a virtual source ``o_jv`` stands for everything already
committed to earlier layers; the sink is ``o_j``.  Vertices on the sink side
of the cut are the ancestor operations that must move out together with
``o_j`` (set R_oj); cut edges are reagents whose producing operation stays
behind and must therefore be *stored* between layers.  Storage usage is the
primary cost, the number of removed ancestor operations the tie-breaker
(Fig. 5(a)-(c): remove o_1 before o_2 — less storage — and before o_3 —
fewer removed ancestors).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import LayeringError
from ..graphs import DiGraph, FlowNetwork, max_flow_min_cut

_VIRTUAL_SOURCE = "__source__"


@dataclass(frozen=True)
class EvictionCost:
    """Cost of evicting one indeterminate operation from the current layer.

    ``storage`` is the min-cut value (reagents that must be buffered);
    ``removed`` the operations that leave the layer with the sink
    (including the indeterminate operation itself).
    """

    uid: str
    storage: float
    removed: frozenset[str]

    @property
    def sort_key(self) -> tuple[float, int, str]:
        return (self.storage, len(self.removed), self.uid)


def eviction_cost(
    layer_uids: set[str],
    graph: DiGraph,
    target: str,
) -> EvictionCost:
    """Min-cut eviction cost of indeterminate operation ``target``.

    Args:
        layer_uids: operations currently allocated to the layer.
        graph: the full assay dependency graph.
        target: the indeterminate operation to price.
    """
    if target not in layer_uids:
        raise LayeringError(f"{target!r} is not in the layer")

    in_layer_ancestors = graph.ancestors(target) & layer_uids
    network = FlowNetwork()
    network.add_node(_VIRTUAL_SOURCE)
    network.add_node(target)

    relevant = in_layer_ancestors | {target}
    for uid in relevant:
        for child in graph.successors(uid):
            if child in relevant:
                # One dependency edge = one reagent to store if cut.
                network.add_edge(uid, child, 1)
    for uid in in_layer_ancestors:
        parents = graph.predecessors(uid)
        # Ancestors fed from outside the layer (earlier layers or assay
        # inputs) hang off the virtual source: their upstream supply is
        # already fixed, so the cut can only pass below them.
        if not (parents & relevant):
            network.add_edge(_VIRTUAL_SOURCE, uid, 1)

    if not in_layer_ancestors:
        # Nothing to inherit: eviction is free and removes only the target.
        return EvictionCost(uid=target, storage=0, removed=frozenset({target}))

    cut = max_flow_min_cut(network, _VIRTUAL_SOURCE, target)
    removed = frozenset(cut.sink_side_minimal - {_VIRTUAL_SOURCE})
    # Recompute the storage of the *minimal sink side* cut: edges from the
    # kept side into the removed side.
    storage = 0
    for uid in relevant - removed:
        storage += sum(
            1 for child in graph.successors(uid) if child in removed
        )
    storage += sum(
        1 for uid in removed
        if network.capacity(_VIRTUAL_SOURCE, uid) > 0
    )
    return EvictionCost(uid=target, storage=storage, removed=removed)


def resource_based_allocation(
    layer_uids: set[str],
    graph: DiGraph,
    indeterminate: set[str],
    threshold: int,
) -> tuple[set[str], set[str]]:
    """Enforce the indeterminate-operation threshold on a layer.

    Greedily evicts the cheapest indeterminate operations (storage first,
    removed-ancestor count second) until at most ``threshold`` remain, then
    closes the layer under dependencies (anything depending on an evicted
    operation leaves too).

    Returns ``(kept_uids, evicted_uids)``.
    """
    if threshold < 1:
        raise LayeringError(f"threshold must be >= 1, got {threshold}")
    kept = set(layer_uids)
    remaining_ind = sorted(indeterminate & kept)
    if len(remaining_ind) <= threshold:
        return kept, set()

    evicted: set[str] = set()
    # Cheapest-first greedy (paper: evict the op with least reagent
    # inheritance first), re-priced after every eviction since earlier
    # removals change the remaining structure.
    while len(remaining_ind) > threshold:
        costs = [eviction_cost(kept, graph, uid) for uid in remaining_ind]
        best = min(costs, key=lambda c: c.sort_key)
        removed = _dependency_closure(set(best.removed), kept, graph)
        kept_after = kept - removed
        ind_after = [u for u in remaining_ind if u not in removed]
        if not kept_after or not ind_after:
            # The min-cut sweep would take the whole layer (or its last
            # indeterminate op) with it.  Fall back to evicting the single
            # operation: indeterminate operations never have same-layer
            # dependents (dependency-based allocation deferred their
            # descendants), so this is always safe.
            removed = {best.uid}
            kept_after = kept - removed
            ind_after = [u for u in remaining_ind if u != best.uid]
        kept = kept_after
        evicted |= removed
        remaining_ind = ind_after

    if not kept:  # pragma: no cover - guarded above
        raise LayeringError(
            "eviction would empty the layer; lower the threshold pressure"
        )
    return kept, evicted


def _dependency_closure(
    removed: set[str], layer_uids: set[str], graph: DiGraph
) -> set[str]:
    """Close ``removed`` under in-layer dependents: an operation whose
    ancestor leaves the layer must leave too."""
    changed = True
    while changed:
        changed = False
        for uid in sorted(layer_uids - removed):
            if graph.predecessors(uid) & removed:
                removed.add(uid)
                changed = True
    return removed
