"""The layering driver — Algorithm 1 of the paper.

Splits an assay into sequential layers such that

* every layer except possibly the last contains at least one indeterminate
  operation,
* all indeterminate operations of a layer can be placed at the end of its
  sub-schedule (no indeterminate operation has a child in its own layer),
* no layer holds more than ``threshold`` indeterminate operations
  (resource-based eviction, Sec. 3.1),
* dependencies only point forward: a parent's layer index never exceeds its
  child's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import LayeringError
from ..operations.assay import Assay
from .allocation import dependency_based_allocation
from .eviction import resource_based_allocation


@dataclass(frozen=True)
class Layer:
    """One layer: an index and the operations allocated to it."""

    index: int
    uids: tuple[str, ...]
    indeterminate_uids: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.uids)

    def __contains__(self, uid: str) -> bool:
        return uid in self.uids


@dataclass
class LayeringResult:
    """All layers of an assay plus derived bookkeeping."""

    assay: Assay
    layers: list[Layer]
    threshold: int
    layer_of: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.layer_of:
            self.layer_of = {
                uid: layer.index for layer in self.layers for uid in layer.uids
            }

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def cross_layer_edges(self) -> list[tuple[str, str]]:
        """Dependency edges whose endpoints live in different layers."""
        return [
            (p, c)
            for p, c in self.assay.edges
            if self.layer_of[p] != self.layer_of[c]
        ]

    def storage_demand(self, layer_index: int) -> int:
        """Reagents produced up to ``layer_index`` consumed after it.

        An edge (p, c) with ``layer(p) <= layer_index < layer(c)`` means the
        output of p has to be buffered across the layer boundary.
        """
        return sum(
            1
            for p, c in self.assay.edges
            if self.layer_of[p] <= layer_index < self.layer_of[c]
        )

    def validate(self) -> None:
        """Check every layering invariant; raises LayeringError."""
        seen: set[str] = set()
        for layer in self.layers:
            overlap = seen & set(layer.uids)
            if overlap:
                raise LayeringError(f"operations in two layers: {sorted(overlap)}")
            seen |= set(layer.uids)
        missing = set(self.assay.uids) - seen
        if missing:
            raise LayeringError(f"operations never layered: {sorted(missing)}")

        for parent, child in self.assay.edges:
            if self.layer_of[parent] > self.layer_of[child]:
                raise LayeringError(
                    f"dependency {parent}->{child} goes backwards "
                    f"({self.layer_of[parent]} -> {self.layer_of[child]})"
                )

        for layer in self.layers[:-1]:
            if not layer.indeterminate_uids:
                raise LayeringError(
                    f"non-final layer {layer.index} has no indeterminate op"
                )
        for layer in self.layers:
            if len(layer.indeterminate_uids) > self.threshold:
                raise LayeringError(
                    f"layer {layer.index} exceeds indeterminate threshold "
                    f"({len(layer.indeterminate_uids)} > {self.threshold})"
                )
            for uid in layer.indeterminate_uids:
                same_layer_children = (
                    set(self.assay.children(uid)) & set(layer.uids)
                )
                if same_layer_children:
                    raise LayeringError(
                        f"indeterminate {uid} has same-layer children "
                        f"{sorted(same_layer_children)}"
                    )


def layer_assay(assay: Assay, threshold: int = 10) -> LayeringResult:
    """Run Algorithm 1 on ``assay``.

    ``threshold`` is the paper's constant ``t`` — the maximal number of
    indeterminate operations per layer (each needs its own device for the
    parallel indeterminate tail).
    """
    if threshold < 1:
        raise LayeringError(f"threshold must be >= 1, got {threshold}")
    assay.validate()

    full_graph = assay.graph
    pool = set(assay.uids)
    indeterminate_all = set(assay.indeterminate_uids)
    layers: list[Layer] = []

    while pool:
        pool_graph = full_graph.subgraph(pool)
        pool_ind = indeterminate_all & pool
        selected = dependency_based_allocation(pool_graph, pool_ind)
        kept, _evicted = resource_based_allocation(
            selected, full_graph, pool_ind, threshold
        )
        if not kept:
            raise LayeringError("layering made no progress")  # pragma: no cover
        order = [uid for uid in assay.topological_order() if uid in kept]
        layer = Layer(
            index=len(layers),
            uids=tuple(order),
            indeterminate_uids=tuple(
                uid for uid in order if uid in indeterminate_all
            ),
        )
        layers.append(layer)
        pool -= kept

    result = LayeringResult(assay=assay, layers=layers, threshold=threshold)
    result.validate()
    return result
