"""Layering for hybrid scheduling (Sec. 3 / Algorithm 1 of the paper)."""

from .allocation import dependency_based_allocation
from .eviction import EvictionCost, eviction_cost, resource_based_allocation
from .layering import Layer, LayeringResult, layer_assay

__all__ = [
    "dependency_based_allocation",
    "EvictionCost",
    "eviction_cost",
    "resource_based_allocation",
    "Layer",
    "LayeringResult",
    "layer_assay",
]
