"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Structural problem in a graph (unknown node, duplicate edge, ...)."""


class CycleError(GraphError):
    """A directed graph expected to be acyclic contains a cycle."""

    def __init__(self, cycle: list[str]):
        self.cycle = list(cycle)
        super().__init__(f"dependency cycle detected: {' -> '.join(self.cycle)}")


class ModelError(ReproError):
    """Invalid ILP model construction (bad bounds, unknown variable, ...)."""


class SolverError(ReproError):
    """An ILP/LP solver failed unexpectedly."""


class InfeasibleError(SolverError):
    """The model has no feasible solution."""


class UnboundedError(SolverError):
    """The model objective is unbounded."""


class SpecificationError(ReproError):
    """Invalid operation/device/assay specification."""


class BindingError(ReproError):
    """An operation cannot legally be bound to the selected device."""


class SchedulingError(ReproError):
    """A schedule violates a synthesis constraint."""


class LayeringError(ReproError):
    """The layering algorithm received an input it cannot partition."""


class ValidationError(ReproError):
    """A synthesized result failed independent validation."""


class SerializationError(ReproError):
    """JSON (de)serialization of a repro object failed."""


class ServiceError(ReproError):
    """A synthesis-service request failed (client- or server-side).

    ``context`` carries the attempt history a resilient client attaches
    before re-raising (retries used, hedge fired, breaker state,
    replicas tried), so a fleet failure is debuggable from the exception
    alone — it is folded into ``str(exc)``.
    """

    def __init__(self, message: str, status: int = 500, kind: str = "error",
                 context: "dict | None" = None):
        super().__init__(message)
        #: HTTP status code the failure maps to.
        self.status = status
        #: machine-readable failure kind (``queue-full``, ``timeout``, ...).
        self.kind = kind
        #: attempt context attached by the client (None until attached).
        self.context = dict(context) if context else None

    def with_context(self, **fields) -> "ServiceError":
        """Attach (or extend) attempt context; returns ``self``."""
        if self.context is None:
            self.context = {}
        self.context.update(fields)
        return self

    def __str__(self) -> str:
        base = super().__str__()
        if not self.context:
            return base
        detail = ", ".join(
            f"{key}={value}" for key, value in sorted(self.context.items())
        )
        return f"{base} [{detail}]"


class LeaseFencedError(ServiceError):
    """A replica tried to write shared state with a superseded fencing
    token: another replica took over the store lease (this one's
    heartbeats went stale), so the write was refused and the replica
    must degrade to read-only store access."""

    def __init__(self, message: str):
        super().__init__(message, status=409, kind="lease-fenced")


class CircuitOpenError(ServiceError):
    """The client's circuit breaker is open: the server failed
    consecutively often enough that further requests are refused locally
    (without touching the network) until the cooldown elapses and a
    half-open probe succeeds."""

    def __init__(self, message: str):
        super().__init__(message, status=503, kind="circuit-open")
