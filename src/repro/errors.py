"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Structural problem in a graph (unknown node, duplicate edge, ...)."""


class CycleError(GraphError):
    """A directed graph expected to be acyclic contains a cycle."""

    def __init__(self, cycle: list[str]):
        self.cycle = list(cycle)
        super().__init__(f"dependency cycle detected: {' -> '.join(self.cycle)}")


class ModelError(ReproError):
    """Invalid ILP model construction (bad bounds, unknown variable, ...)."""


class SolverError(ReproError):
    """An ILP/LP solver failed unexpectedly."""


class InfeasibleError(SolverError):
    """The model has no feasible solution."""


class UnboundedError(SolverError):
    """The model objective is unbounded."""


class SpecificationError(ReproError):
    """Invalid operation/device/assay specification."""


class BindingError(ReproError):
    """An operation cannot legally be bound to the selected device."""


class SchedulingError(ReproError):
    """A schedule violates a synthesis constraint."""


class LayeringError(ReproError):
    """The layering algorithm received an input it cannot partition."""


class ValidationError(ReproError):
    """A synthesized result failed independent validation."""


class SerializationError(ReproError):
    """JSON (de)serialization of a repro object failed."""


class ServiceError(ReproError):
    """A synthesis-service request failed (client- or server-side)."""

    def __init__(self, message: str, status: int = 500, kind: str = "error"):
        super().__init__(message)
        #: HTTP status code the failure maps to.
        self.status = status
        #: machine-readable failure kind (``queue-full``, ``timeout``, ...).
        self.kind = kind


class CircuitOpenError(ServiceError):
    """The client's circuit breaker is open: the server failed
    consecutively often enough that further requests are refused locally
    (without touching the network) until the cooldown elapses and a
    half-open probe succeeds."""

    def __init__(self, message: str):
        super().__init__(message, status=503, kind="circuit-open")
