"""Flow-channel routing over a placed grid.

The paper minimizes the number of transportation paths "to save routing
efforts" — this module quantifies those efforts.  Given a placement
(:class:`~repro.layout.placer.PlacementResult`), it routes every
device-to-device channel along grid edges with a congestion-aware BFS
(channels prefer free edges; reusing an edge costs extra) and reports:

* total routed channel length,
* edge congestion (how many channels share the most contested grid edge) —
  in a flow layer, overlapping channels need crossover structures, the
  expensive part of routing a continuous-flow chip,
* per-path routes for rendering.

Routing runs on the *dual* grid of cell corners so channels pass between
device cells rather than through them.
"""

from __future__ import annotations

import heapq
from collections import Counter
from dataclasses import dataclass, field

from ..errors import SpecificationError
from .grid import GridLayout, Position

#: cost of reusing an edge another channel already occupies.
_CONGESTION_PENALTY = 4.0


@dataclass(frozen=True)
class Route:
    """One routed channel: the sequence of grid points it traverses."""

    path: tuple[tuple[str, str], ...] = ()
    points: tuple[Position, ...] = ()

    @property
    def length(self) -> int:
        return max(0, len(self.points) - 1)

    def edges(self) -> list[frozenset[Position]]:
        return [
            frozenset((a, b)) for a, b in zip(self.points, self.points[1:])
        ]


@dataclass
class RoutingResult:
    """All channels routed, plus congestion metrics."""

    routes: dict[tuple[str, str], Route] = field(default_factory=dict)
    total_length: int = 0
    #: channels sharing the most contested grid edge (1 = no overlap).
    max_congestion: int = 0
    #: number of grid edges used by 2+ channels.
    shared_edges: int = 0

    def __len__(self) -> int:
        return len(self.routes)


class ChannelRouter:
    """Congestion-aware sequential router (cheapest channels first)."""

    def __init__(self, congestion_penalty: float = _CONGESTION_PENALTY):
        if congestion_penalty < 0:
            raise SpecificationError("penalty must be >= 0")
        self.congestion_penalty = congestion_penalty

    def route(
        self,
        layout: GridLayout,
        paths: list[tuple[str, str]],
    ) -> RoutingResult:
        """Route every device pair in ``paths`` on ``layout``'s grid."""
        for a, b in paths:
            layout.position_of(a)  # raises for unplaced devices
            layout.position_of(b)

        # Shortest pairs first: long channels route around existing ones.
        ordered = sorted(
            paths, key=lambda p: (layout.distance(p[0], p[1]), p)
        )
        usage: Counter[frozenset[Position]] = Counter()
        result = RoutingResult()
        for dev_a, dev_b in ordered:
            points = self._dijkstra(
                layout, layout.position_of(dev_a),
                layout.position_of(dev_b), usage,
            )
            route = Route(path=((dev_a, dev_b),), points=tuple(points))
            key = (dev_a, dev_b) if dev_a <= dev_b else (dev_b, dev_a)
            result.routes[key] = route
            result.total_length += route.length
            for edge in route.edges():
                usage[edge] += 1

        if usage:
            result.max_congestion = max(usage.values())
            result.shared_edges = sum(1 for c in usage.values() if c > 1)
        return result

    def _dijkstra(
        self,
        layout: GridLayout,
        start: Position,
        goal: Position,
        usage: Counter,
    ) -> list[Position]:
        """Cheapest path over grid points; occupied cells (other devices)
        cost extra to traverse, congested edges cost the penalty."""

        def neighbors(p: Position):
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                q = Position(p.x + dx, p.y + dy)
                if layout.in_bounds(q):
                    yield q

        def edge_cost(p: Position, q: Position) -> float:
            cost = 1.0
            occupant = layout.occupant(q)
            if occupant is not None and q != goal:
                cost += 3.0  # crossing another device's cell
            cost += self.congestion_penalty * usage[frozenset((p, q))]
            return cost

        best: dict[Position, float] = {start: 0.0}
        prev: dict[Position, Position] = {}
        heap: list[tuple[float, int, Position]] = [(0.0, 0, start)]
        tie = 0
        while heap:
            dist, _, node = heapq.heappop(heap)
            if node == goal:
                break
            if dist > best.get(node, float("inf")):
                continue
            for succ in neighbors(node):
                cand = dist + edge_cost(node, succ)
                if cand < best.get(succ, float("inf")):
                    best[succ] = cand
                    prev[succ] = node
                    tie += 1
                    heapq.heappush(heap, (cand, tie, succ))
        if goal not in best:
            raise SpecificationError(
                f"no route from {start} to {goal}"
            )  # pragma: no cover - grid is always connected
        points = [goal]
        while points[-1] != start:
            points.append(prev[points[-1]])
        points.reverse()
        return points


def route_chip(placement, paths: "list[tuple[str, str]] | set") -> RoutingResult:
    """Convenience wrapper: route a placement's channels."""
    router = ChannelRouter()
    return router.route(placement.layout, sorted(paths))
