"""Layout-driven transportation estimation.

A drop-in alternative to the paper's rank-based refinement: after a
synthesis pass, place the bound devices on the grid and convert *placed
channel lengths* into per-edge transportation times (one time unit per
``units_per_cell`` grid cells, minimum one unit for any off-device hop).

Because the placer minimizes usage-weighted length, heavily used paths end
up short — the same monotone relationship the rank heuristic assumes, now
backed by an actual feasible placement.
"""

from __future__ import annotations

from collections import Counter

from ..errors import SpecificationError
from ..hls.transport import TransportEstimator, path_key
from ..operations.assay import Assay
from .placer import GridPlacer, PlacementResult


class LayoutTransportEstimator(TransportEstimator):
    """A :class:`TransportEstimator` whose refinement places devices.

    Pass it as the ``transport`` argument of
    :func:`repro.hls.synthesizer.synthesize`, or use it manually between
    passes.
    """

    def __init__(self, assay, spec, placer: GridPlacer | None = None,
                 units_per_cell: float = 1.0) -> None:
        super().__init__(assay, spec)
        if units_per_cell <= 0:
            raise SpecificationError("units_per_cell must be positive")
        self.placer = placer or GridPlacer()
        self.units_per_cell = units_per_cell
        self.last_placement: PlacementResult | None = None

    def refine(self, binding: dict[str, str]) -> None:
        usage: Counter[tuple[str, str]] = Counter()
        for parent, child in self._assay.edges:
            dev_p, dev_c = binding[parent], binding[child]
            if dev_p != dev_c:
                usage[path_key(dev_p, dev_c)] += 1

        devices = sorted(set(binding.values()))
        if not usage or not devices:
            # Everything on one device: all transfers free.
            for edge in self._assay.edges:
                self._edge_time[edge] = 0
            self.path_usage, self.path_time = {}, {}
            self.refined = True
            return

        placement = self.placer.place(devices, dict(usage))
        self.last_placement = placement

        max_term = self._spec.transport_progression.maximum
        self.path_time = {
            pair: max(
                1, min(max_term, round(dist / self.units_per_cell))
            )
            for pair, dist in placement.distances.items()
        }
        self.path_usage = dict(usage)
        for parent, child in self._assay.edges:
            dev_p, dev_c = binding[parent], binding[child]
            if dev_p == dev_c:
                self._edge_time[(parent, child)] = 0
            else:
                self._edge_time[(parent, child)] = self.path_time[
                    path_key(dev_p, dev_c)
                ]
        self.refined = True


def layout_refined_transport(
    assay: Assay,
    spec,
    binding: dict[str, str],
    placer: GridPlacer | None = None,
    units_per_cell: float = 1.0,
) -> LayoutTransportEstimator:
    """One-shot helper: build and refine a layout-driven estimator."""
    estimator = LayoutTransportEstimator(
        assay, spec, placer=placer, units_per_cell=units_per_cell
    )
    estimator.refine(binding)
    return estimator
