"""Chip-layout estimation (extension of paper Sec. 4.1).

The paper estimates transportation times from path *usage ranks* because
the physical layout is unknown during high-level synthesis.  This package
closes the loop further: it places the synthesized devices on a coarse grid
(simulated annealing over usage-weighted Manhattan channel lengths — the
standard floorplanning objective of the cited co-layout work [15]) and
derives per-path transportation times from the *actual placed distances*
instead of the rank heuristic.

Use :class:`~repro.layout.placer.GridPlacer` directly, or
:func:`~repro.layout.transport.layout_refined_transport` as a drop-in
replacement for the rank-based refinement.
"""

from .grid import GridLayout, Position
from .placer import GridPlacer, PlacementResult
from .router import ChannelRouter, Route, RoutingResult, route_chip
from .transport import LayoutTransportEstimator, layout_refined_transport

__all__ = [
    "GridLayout",
    "Position",
    "GridPlacer",
    "PlacementResult",
    "ChannelRouter",
    "Route",
    "RoutingResult",
    "route_chip",
    "LayoutTransportEstimator",
    "layout_refined_transport",
]
