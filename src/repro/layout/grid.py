"""Grid abstraction for coarse device placement.

Devices occupy cells of a rectangular grid; flow channels route between
cell centers, so channel length is approximated by Manhattan distance —
the standard early-floorplanning metric.  Cell side length corresponds to
the pitch of one medium device plus routing slack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import SpecificationError


@dataclass(frozen=True)
class Position:
    """A grid cell coordinate."""

    x: int
    y: int

    def manhattan(self, other: "Position") -> int:
        return abs(self.x - other.x) + abs(self.y - other.y)


class GridLayout:
    """A placement of device uids on grid cells (at most one per cell)."""

    def __init__(self, width: int, height: int) -> None:
        if width < 1 or height < 1:
            raise SpecificationError("grid must be at least 1x1")
        self.width = width
        self.height = height
        self._of_device: dict[str, Position] = {}
        self._at: dict[Position, str] = {}

    # -- mutation ----------------------------------------------------------

    def place(self, device_uid: str, position: Position) -> None:
        if not self.in_bounds(position):
            raise SpecificationError(f"{position} outside {self.width}x{self.height}")
        if position in self._at:
            raise SpecificationError(f"{position} already holds {self._at[position]}")
        if device_uid in self._of_device:
            raise SpecificationError(f"{device_uid} already placed")
        self._of_device[device_uid] = position
        self._at[position] = device_uid

    def move(self, device_uid: str, position: Position) -> None:
        """Move a placed device to a free cell."""
        if position in self._at:
            raise SpecificationError(f"{position} occupied")
        old = self.position_of(device_uid)
        del self._at[old]
        self._of_device[device_uid] = position
        self._at[position] = device_uid

    def swap(self, a: str, b: str) -> None:
        """Swap the cells of two placed devices."""
        pa, pb = self.position_of(a), self.position_of(b)
        self._of_device[a], self._of_device[b] = pb, pa
        self._at[pa], self._at[pb] = b, a

    # -- queries -------------------------------------------------------------

    def in_bounds(self, position: Position) -> bool:
        return 0 <= position.x < self.width and 0 <= position.y < self.height

    def position_of(self, device_uid: str) -> Position:
        try:
            return self._of_device[device_uid]
        except KeyError:
            raise SpecificationError(f"{device_uid} not placed") from None

    def occupant(self, position: Position) -> str | None:
        return self._at.get(position)

    def distance(self, a: str, b: str) -> int:
        """Manhattan channel length between two placed devices."""
        return self.position_of(a).manhattan(self.position_of(b))

    def free_cells(self) -> Iterator[Position]:
        for y in range(self.height):
            for x in range(self.width):
                pos = Position(x, y)
                if pos not in self._at:
                    yield pos

    @property
    def devices(self) -> list[str]:
        return list(self._of_device)

    def copy(self) -> "GridLayout":
        clone = GridLayout(self.width, self.height)
        clone._of_device = dict(self._of_device)
        clone._at = dict(self._at)
        return clone

    def render(self) -> str:
        """ASCII picture of the placement."""
        rows = []
        for y in range(self.height):
            cells = []
            for x in range(self.width):
                uid = self._at.get(Position(x, y))
                cells.append((uid or ".")[:4].center(5))
            rows.append("".join(cells))
        return "\n".join(rows)
