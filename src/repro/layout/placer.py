"""Usage-weighted device placement by simulated annealing.

Objective: minimize ``sum over paths (usage * manhattan_distance)`` — the
more often a path transports reagents, the shorter its channel should be,
which is exactly the relationship the paper's transportation refinement
postulates (Sec. 4.1: "if a path p_a is used more often than p_b ... the
channel length of p_a should be designed shorter").

Deterministic for a given seed.  Grid size defaults to the smallest square
with ~30 % free cells for routing slack.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..errors import SpecificationError
from .grid import GridLayout, Position


@dataclass
class PlacementResult:
    """Outcome of a placement run."""

    layout: GridLayout
    cost: float
    initial_cost: float
    iterations: int
    #: per-path manhattan distances of the final placement.
    distances: dict[tuple[str, str], int] = field(default_factory=dict)

    @property
    def improvement(self) -> float:
        if self.initial_cost == 0:
            return 0.0
        return (self.initial_cost - self.cost) / self.initial_cost


class GridPlacer:
    """Simulated-annealing placer over usage-weighted channel lengths."""

    def __init__(
        self,
        iterations: int = 4000,
        initial_temperature: float = 4.0,
        cooling: float = 0.995,
        seed: int = 0,
    ) -> None:
        if iterations < 0:
            raise SpecificationError("iterations must be >= 0")
        if not 0 < cooling < 1:
            raise SpecificationError("cooling must be in (0, 1)")
        self.iterations = iterations
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.seed = seed

    # -- public API ----------------------------------------------------------

    def place(
        self,
        device_uids: list[str],
        path_usage: dict[tuple[str, str], int],
        grid: tuple[int, int] | None = None,
    ) -> PlacementResult:
        """Place ``device_uids`` minimizing usage-weighted wirelength.

        ``path_usage`` maps canonical (sorted) device-uid pairs to how many
        dependency edges use that path — the output of
        :attr:`repro.hls.transport.TransportEstimator.path_usage`.
        """
        if not device_uids:
            raise SpecificationError("nothing to place")
        for (a, b), usage in path_usage.items():
            if a not in device_uids or b not in device_uids:
                raise SpecificationError(f"path ({a},{b}) names unplaced device")
            if usage <= 0:
                raise SpecificationError(f"path ({a},{b}) has usage {usage}")

        width, height = grid or self._default_grid(len(device_uids))
        if width * height < len(device_uids):
            raise SpecificationError(
                f"{width}x{height} grid cannot hold {len(device_uids)} devices"
            )
        rng = random.Random(self.seed)
        layout = self._initial_layout(device_uids, width, height)
        cost = self._cost(layout, path_usage)
        initial_cost = cost
        best = layout.copy()
        best_cost = cost

        temperature = self.initial_temperature
        for _ in range(self.iterations):
            candidate_cost = self._try_move(layout, path_usage, cost, rng,
                                            temperature)
            cost = candidate_cost
            if cost < best_cost:
                best_cost = cost
                best = layout.copy()
            temperature *= self.cooling

        distances = {
            pair: best.distance(*pair) for pair in path_usage
        }
        return PlacementResult(
            layout=best,
            cost=best_cost,
            initial_cost=initial_cost,
            iterations=self.iterations,
            distances=distances,
        )

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _default_grid(num_devices: int) -> tuple[int, int]:
        side = max(2, math.ceil(math.sqrt(num_devices * 1.3)))
        return side, side

    @staticmethod
    def _initial_layout(
        device_uids: list[str], width: int, height: int
    ) -> GridLayout:
        layout = GridLayout(width, height)
        for k, uid in enumerate(device_uids):
            layout.place(uid, Position(k % width, k // width))
        return layout

    @staticmethod
    def _cost(layout: GridLayout, path_usage: dict[tuple[str, str], int]) -> float:
        return float(
            sum(
                usage * layout.distance(a, b)
                for (a, b), usage in path_usage.items()
            )
        )

    def _try_move(
        self,
        layout: GridLayout,
        path_usage: dict[tuple[str, str], int],
        cost: float,
        rng: random.Random,
        temperature: float,
    ) -> float:
        """One annealing step: swap two devices or move one to a free cell."""
        devices = layout.devices
        mover = rng.choice(devices)
        free = list(layout.free_cells())
        use_free = free and rng.random() < 0.5

        if use_free:
            target = rng.choice(free)
            origin = layout.position_of(mover)
            layout.move(mover, target)
            undo = lambda: layout.move(mover, origin)  # noqa: E731
        else:
            other = rng.choice(devices)
            if other == mover:
                return cost
            layout.swap(mover, other)
            undo = lambda: layout.swap(mover, other)  # noqa: E731

        new_cost = self._cost(layout, path_usage)
        delta = new_cost - cost
        if delta <= 0 or (
            temperature > 1e-12
            and rng.random() < math.exp(-delta / temperature)
        ):
            return new_cost
        undo()
        return cost
