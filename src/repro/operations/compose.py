"""Assay composition: run protocols side by side or back to back.

Multi-assay chips are routine (the paper's Fig. 1 chip runs three parallel
sample lanes); these helpers build the combined DAG:

* :func:`parallel` — independent union (one chip, simultaneous protocols);
* :func:`sequential` — protocol B starts after protocol A finishes: every
  sink of A feeds every source of B through an explicit handoff edge;
* :func:`chain` — like :func:`sequential` over many assays.

Uid collisions are resolved by prefixing (``a0.uid``, ``a1.uid``, ...)
only when needed.
"""

from __future__ import annotations

from ..errors import SpecificationError
from .assay import Assay
from .operation import Operation


def _clone_into(
    target: Assay, source: Assay, prefix: str
) -> dict[str, str]:
    """Copy ``source``'s ops/edges into ``target``; returns uid mapping."""
    mapping: dict[str, str] = {}
    for op in source:
        new_uid = f"{prefix}{op.uid}" if prefix else op.uid
        if new_uid in target:
            raise SpecificationError(
                f"uid collision on {new_uid!r}; pass prefixes"
            )
        mapping[op.uid] = new_uid
        target.add(
            Operation(
                uid=new_uid,
                duration=op.duration,
                capacity=op.capacity,
                container=op.container,
                accessories=op.accessories,
                function=op.function,
            )
        )
    for parent, child in source.edges:
        target.add_dependency(mapping[parent], mapping[child])
    return mapping


def _prefixes(assays: list[Assay], prefixes: "list[str] | None") -> list[str]:
    if prefixes is not None:
        if len(prefixes) != len(assays):
            raise SpecificationError("one prefix per assay required")
        return [p if not p or p.endswith(".") else p + "." for p in prefixes]
    all_uids = [uid for a in assays for uid in a.uids]
    if len(set(all_uids)) == len(all_uids):
        return [""] * len(assays)
    return [f"a{k}." for k in range(len(assays))]


def parallel(
    assays: list[Assay],
    name: str = "",
    prefixes: "list[str] | None" = None,
) -> Assay:
    """Independent union of protocols on one chip."""
    if not assays:
        raise SpecificationError("nothing to compose")
    out = Assay(name or "+".join(a.name for a in assays))
    for assay, prefix in zip(assays, _prefixes(assays, prefixes)):
        _clone_into(out, assay, prefix)
    out.validate()
    return out


def sequential(
    first: Assay,
    second: Assay,
    name: str = "",
    prefixes: "list[str] | None" = None,
) -> Assay:
    """``second`` starts after ``first``: every sink of ``first`` becomes a
    parent of every source of ``second`` (the handoff)."""
    out = Assay(name or f"{first.name}>{second.name}")
    pre = _prefixes([first, second], prefixes)
    map_a = _clone_into(out, first, pre[0])
    map_b = _clone_into(out, second, pre[1])
    sinks = [map_a[uid] for uid in first.graph.sinks()]
    sources = [map_b[uid] for uid in second.graph.sources()]
    for sink in sinks:
        for source in sources:
            out.add_dependency(sink, source)
    out.validate()
    return out


def chain(assays: list[Assay], name: str = "") -> Assay:
    """Fold :func:`sequential` over ``assays`` (left to right)."""
    if not assays:
        raise SpecificationError("nothing to compose")
    prefixes = [f"s{k}." for k in range(len(assays))]
    combined = Assay(name or ">".join(a.name for a in assays))
    previous_sinks: list[str] = []
    for assay, prefix in zip(assays, prefixes):
        mapping = _clone_into(combined, assay, prefix)
        sources = [mapping[uid] for uid in assay.graph.sources()]
        for sink in previous_sinks:
            for source in sources:
                combined.add_dependency(sink, source)
        previous_sinks = [mapping[uid] for uid in assay.graph.sinks()]
    combined.validate()
    return combined
