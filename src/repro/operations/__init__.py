"""Component-oriented operations and assays (Sec. 2.2 of the paper)."""

from .assay import Assay
from .builder import AssayBuilder
from .compose import chain, parallel, sequential
from .duration import Duration, Fixed, Indeterminate
from .operation import Operation

__all__ = [
    "Assay",
    "AssayBuilder",
    "chain",
    "parallel",
    "sequential",
    "Duration",
    "Fixed",
    "Indeterminate",
    "Operation",
]
