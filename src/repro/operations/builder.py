"""Fluent construction API for assays.

Protocol reconstructions (:mod:`repro.assays`) and examples build their DAGs
through this builder, which keeps uid management and dependency wiring
readable::

    b = AssayBuilder("pcr")
    load = b.op("load", minutes=3, capacity="small", accessories=["pump"])
    heat = b.op("heat", minutes=30, accessories=["heating_pad"], after=[load])
    read = b.op("read", minutes=2, accessories=["optical_system"], after=[heat])
    assay = b.build()
"""

from __future__ import annotations

from collections.abc import Iterable

from ..components.containers import Capacity, ContainerKind
from ..errors import SpecificationError
from .assay import Assay
from .duration import Fixed, Indeterminate
from .operation import Operation

_CAPACITY_BY_NAME = {c.value: c for c in Capacity}
_CAPACITY_BY_NAME.update({c.short: c for c in Capacity})
_KIND_BY_NAME = {k.value: k for k in ContainerKind}
_KIND_BY_NAME.update({k.short: k for k in ContainerKind})


def _parse_capacity(value: "Capacity | str") -> Capacity:
    if isinstance(value, Capacity):
        return value
    try:
        return _CAPACITY_BY_NAME[value.lower()]
    except (KeyError, AttributeError):
        raise SpecificationError(f"unknown capacity {value!r}") from None


def _parse_kind(value: "ContainerKind | str | None") -> ContainerKind | None:
    if value is None or isinstance(value, ContainerKind):
        return value
    try:
        return _KIND_BY_NAME[value.lower()]
    except (KeyError, AttributeError):
        raise SpecificationError(f"unknown container kind {value!r}") from None


class AssayBuilder:
    """Incremental assay construction with dependency chaining."""

    def __init__(self, name: str = "assay") -> None:
        self._assay = Assay(name)

    def op(
        self,
        uid: str,
        minutes: int,
        *,
        indeterminate: bool = False,
        capacity: "Capacity | str" = Capacity.SMALL,
        container: "ContainerKind | str | None" = None,
        accessories: Iterable[str] = (),
        function: str = "",
        after: Iterable["str | Operation"] = (),
    ) -> Operation:
        """Add an operation and wire its parent dependencies in one call.

        ``minutes`` is the exact duration, or the minimum duration when
        ``indeterminate=True``.  ``after`` accepts uids or Operation objects.
        """
        duration = Indeterminate(minutes) if indeterminate else Fixed(minutes)
        operation = Operation(
            uid=uid,
            duration=duration,
            capacity=_parse_capacity(capacity),
            container=_parse_kind(container),
            accessories=frozenset(accessories),
            function=function,
        )
        self._assay.add(operation)
        for parent in after:
            parent_uid = parent.uid if isinstance(parent, Operation) else parent
            self._assay.add_dependency(parent_uid, uid)
        return operation

    def dependency(self, parent: "str | Operation", child: "str | Operation") -> None:
        parent_uid = parent.uid if isinstance(parent, Operation) else parent
        child_uid = child.uid if isinstance(child, Operation) else child
        self._assay.add_dependency(parent_uid, child_uid)

    def build(self) -> Assay:
        """Validate and return the assembled assay."""
        self._assay.validate()
        return self._assay
