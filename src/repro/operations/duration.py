"""Operation durations: exact values or indeterminate minimums.

The paper's component-oriented operation definition (Sec. 2.2, attribute b)
allows the execution duration to be "an accurate value, or specified as
indeterminate with a minimum duration".  We model this as a small algebraic
type::

    Fixed(30)           # exactly 30 time units
    Indeterminate(15)   # at least 15 units; completion decided at run time
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SpecificationError


@dataclass(frozen=True)
class Duration:
    """Base class; use :class:`Fixed` or :class:`Indeterminate`."""

    minimum: int

    def __post_init__(self) -> None:
        if not isinstance(self.minimum, int):
            raise SpecificationError(
                f"duration must be an integer number of time units, "
                f"got {self.minimum!r}"
            )
        if self.minimum <= 0:
            raise SpecificationError(
                f"duration must be positive, got {self.minimum}"
            )

    @property
    def is_indeterminate(self) -> bool:
        raise NotImplementedError

    @property
    def scheduled(self) -> int:
        """The value used in the schedule: the exact duration for fixed
        operations, the minimum for indeterminate ones (paper eq. (14))."""
        return self.minimum


@dataclass(frozen=True)
class Fixed(Duration):
    """An exact, known execution duration."""

    @property
    def is_indeterminate(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"Fixed({self.minimum})"


@dataclass(frozen=True)
class Indeterminate(Duration):
    """A duration only known to be at least ``minimum``.

    The actual completion is observed at run time (cyberphysical
    integration); in the hybrid schedule such an operation terminates its
    layer, and the extra time beyond ``minimum`` appears as a symbolic
    ``I_k`` term in the makespan.
    """

    @property
    def is_indeterminate(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"Indeterminate(>={self.minimum})"
