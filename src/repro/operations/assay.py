"""An assay: a DAG of component-oriented operations.

Dependencies follow the paper's Sec. 2.2(c): if operation ``o_c`` consumes
the outputs of ``o_p`` then ``o_c`` is a *child* of ``o_p``.  The assay owns
the dependency graph and offers the reachability queries the layering
algorithm needs (ancestors, descendants, indeterminate-op sets).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from ..errors import SpecificationError
from ..graphs import DiGraph, topological_sort
from .operation import Operation


class Assay:
    """A named DAG of operations.

    >>> from repro.operations import Operation, Fixed
    >>> a = Assay("demo")
    >>> _ = a.add(Operation("o1", Fixed(5)))
    >>> _ = a.add(Operation("o2", Fixed(3)))
    >>> a.add_dependency("o1", "o2")
    >>> a.children("o1")
    ['o2']
    """

    def __init__(self, name: str = "assay") -> None:
        self.name = name
        self._ops: dict[str, Operation] = {}
        self._graph = DiGraph()

    # -- construction -----------------------------------------------------

    def add(self, operation: Operation) -> Operation:
        """Add an operation; uids must be unique."""
        if operation.uid in self._ops:
            raise SpecificationError(
                f"duplicate operation uid {operation.uid!r} in assay {self.name!r}"
            )
        self._ops[operation.uid] = operation
        self._graph.add_node(operation.uid)
        return operation

    def add_dependency(self, parent_uid: str, child_uid: str) -> None:
        """Record that ``child`` consumes the outputs of ``parent``."""
        for uid in (parent_uid, child_uid):
            if uid not in self._ops:
                raise SpecificationError(f"unknown operation {uid!r}")
        self._graph.add_edge(parent_uid, child_uid)
        # Fail fast on cycles so errors point at the edge that closed one.
        topological_sort(self._graph)

    # -- access -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ops)

    def __contains__(self, uid: str) -> bool:
        return uid in self._ops

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops.values())

    def __getitem__(self, uid: str) -> Operation:
        try:
            return self._ops[uid]
        except KeyError:
            raise SpecificationError(
                f"unknown operation {uid!r} in assay {self.name!r}"
            ) from None

    @property
    def operations(self) -> list[Operation]:
        return list(self._ops.values())

    @property
    def uids(self) -> list[str]:
        return list(self._ops)

    @property
    def edges(self) -> list[tuple[str, str]]:
        """All (parent, child) dependency pairs."""
        return self._graph.edges

    @property
    def graph(self) -> DiGraph:
        """A copy of the dependency graph (callers may mutate it freely)."""
        return self._graph.copy()

    def parents(self, uid: str) -> list[str]:
        return sorted(self._graph.predecessors(uid))

    def children(self, uid: str) -> list[str]:
        return sorted(self._graph.successors(uid))

    def ancestors(self, uid: str) -> set[str]:
        return self._graph.ancestors(uid)

    def descendants(self, uid: str) -> set[str]:
        return self._graph.descendants(uid)

    def topological_order(self) -> list[str]:
        return topological_sort(self._graph)

    @property
    def indeterminate_uids(self) -> list[str]:
        """Uids of indeterminate operations, in insertion order."""
        return [uid for uid, op in self._ops.items() if op.is_indeterminate]

    @property
    def num_indeterminate(self) -> int:
        return len(self.indeterminate_uids)

    def total_fixed_work(self) -> int:
        """Sum of scheduled durations — a trivial makespan upper bound."""
        return sum(op.duration.scheduled for op in self._ops.values())

    # -- validation & transforms ------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raises on violation."""
        topological_sort(self._graph)  # acyclicity
        for uid in self._ops:
            if uid not in self._graph:
                raise SpecificationError(f"operation {uid!r} missing from graph")

    def replicate(self, copies: int, separator: str = "#") -> "Assay":
        """Return a new assay with ``copies`` independent clones of this one.

        The paper scales its three benchmark assays by introducing
        "replicated operations with the same protocol of the original assay";
        clone *k* gets uids ``"<uid><separator><k>"``.
        """
        if copies < 1:
            raise SpecificationError(f"copies must be >= 1, got {copies}")
        out = Assay(f"{self.name}x{copies}")
        for k in range(copies):
            for op in self._ops.values():
                clone = Operation(
                    uid=f"{op.uid}{separator}{k}",
                    duration=op.duration,
                    capacity=op.capacity,
                    container=op.container,
                    accessories=op.accessories,
                    function=op.function,
                )
                out.add(clone)
            for parent, child in self._graph.edges:
                out.add_dependency(f"{parent}{separator}{k}", f"{child}{separator}{k}")
        return out

    def subset(self, uids: Iterable[str], name: str = "") -> "Assay":
        """Induced sub-assay on ``uids`` (dependencies inside the set)."""
        keep = list(uids)
        sub = Assay(name or f"{self.name}-subset")
        for uid in keep:
            sub.add(self[uid])
        keep_set = set(keep)
        for parent, child in self._graph.edges:
            if parent in keep_set and child in keep_set:
                sub.add_dependency(parent, child)
        return sub

    def __repr__(self) -> str:
        return (
            f"Assay({self.name!r}, ops={len(self._ops)}, "
            f"edges={len(self._graph.edges)}, "
            f"indeterminate={self.num_indeterminate})"
        )
