"""The component-oriented operation definition (Sec. 2.2).

An operation declares *what components it needs*, not what functional type
it has:

a. a container (optionally with the kind left open) with a capacity class,
   plus the accessories required for execution;
b. an execution duration (:class:`~repro.operations.duration.Duration`);
c. dependencies — held by the enclosing :class:`~repro.operations.assay.Assay`
   as parent/child edges, not on the operation itself.

The optional ``function`` label ("mix", "heat", ...) is metadata: the
component-oriented synthesizer ignores it entirely; only the conventional
baseline (Sec. 5) uses it for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..components.containers import (
    Capacity,
    ContainerKind,
    check_container,
    kinds_for_capacity,
)
from ..errors import SpecificationError
from .duration import Duration


@dataclass(frozen=True)
class Operation:
    """A biochemical operation described by its component requirements.

    Attributes:
        uid: unique identifier within an assay.
        duration: fixed or indeterminate execution duration.
        capacity: required container capacity class.
        container: required container kind, or ``None`` when the operation
            may run "in either a ring or a chamber of corresponding size".
        accessories: names of required accessory components (must exist in
            the registry used by the synthesis run).
        function: optional functional label, used only by the conventional
            baseline and for display.
    """

    uid: str
    duration: Duration
    capacity: Capacity = Capacity.SMALL
    container: ContainerKind | None = None
    accessories: frozenset[str] = field(default_factory=frozenset)
    function: str = ""

    def __post_init__(self) -> None:
        if not self.uid:
            raise SpecificationError("operation uid must be non-empty")
        if not isinstance(self.accessories, frozenset):
            object.__setattr__(self, "accessories", frozenset(self.accessories))
        if self.container is not None:
            check_container(self.container, self.capacity)
        elif not kinds_for_capacity(self.capacity):  # pragma: no cover
            raise SpecificationError(
                f"capacity {self.capacity.value} fits no container kind"
            )

    # -- component queries --------------------------------------------------

    @property
    def is_indeterminate(self) -> bool:
        return self.duration.is_indeterminate

    @property
    def allowed_container_kinds(self) -> tuple[ContainerKind, ...]:
        """Container kinds this operation may execute in."""
        if self.container is not None:
            return (self.container,)
        return kinds_for_capacity(self.capacity)

    def requirement_signature(self) -> tuple:
        """Hashable component-requirement signature.

        Two operations with equal signatures are interchangeable for binding
        purposes.  The conventional baseline treats each distinct signature
        as a closed "type" (exact matching); the component-oriented method
        uses cover matching instead (see
        :meth:`repro.devices.device.GeneralDevice.can_execute`).
        """
        return (
            self.container.value if self.container else None,
            self.capacity.value,
            tuple(sorted(self.accessories)),
        )

    def covers(self, other: "Operation") -> bool:
        """True when a device built for ``self`` can also execute ``other``.

        This is the paper's Sec. 3.2 inheritance test: ``C_other ⊆ C_self``
        and ``A_other ⊆ A_self``, with matching capacity classes.
        """
        if other.capacity is not self.capacity:
            return False
        if other.container is not None and other.container is not self.container:
            # ``self`` with unspecified container may be realized either way,
            # so it cannot guarantee coverage of a kind-specific requirement.
            if self.container is None:
                return False
            return False
        return other.accessories <= self.accessories

    def __str__(self) -> str:
        kind = self.container.value if self.container else "any"
        acc = ",".join(sorted(self.accessories)) or "-"
        return (
            f"{self.uid}[{kind}/{self.capacity.short} {acc} {self.duration!r}]"
        )
