"""Cyberphysical runtime: closed-loop execution with faults and recovery.

The paper treats layer-to-layer transitions as real-time cyberphysical
decisions; this package supplies the control loop the one-shot executor
lacks.  :class:`~repro.cyberphysical.engine.ExecutionEngine` dispatches a
hybrid schedule layer by layer against a pluggable duration sampler and an
injected :class:`~repro.cyberphysical.faults.FaultPlan`; recovery policies
(:mod:`~repro.cyberphysical.policies`) escalate from in-place retries
through spare-device rebinding to full contingency re-synthesis of the
residual assay; :mod:`~repro.cyberphysical.campaign` runs seeded
Monte-Carlo fault campaigns across a process pool with a deterministic
merge; :mod:`~repro.cyberphysical.trace` exports every engine decision as
structured JSONL.
"""

from .campaign import (
    CampaignConfig,
    CampaignOutcome,
    RunRecord,
    run_campaign,
    run_one,
)
from .engine import (
    REASON_DEVICE_DOWN,
    REASON_EXHAUSTED,
    DurationSampler,
    EngineReport,
    ExecutionEngine,
    RecoveryContext,
    RecoveryOutcome,
    RecoveryRecord,
    RetrySampler,
)
from .faults import PERSISTENT, ActiveFaults, FaultKind, FaultPlan, FaultSpec
from .policies import (
    DEFAULT_CHAIN,
    RebindSparePolicy,
    RecoveryPolicy,
    ResynthesisPolicy,
    RetryBackoffPolicy,
    build_policies,
)
from .trace import (
    CampaignStats,
    TraceRecord,
    aggregate_stats,
    format_campaign,
    read_trace,
    trace_lines,
    write_trace,
)

__all__ = [
    "CampaignConfig",
    "CampaignOutcome",
    "RunRecord",
    "run_campaign",
    "run_one",
    "DurationSampler",
    "EngineReport",
    "ExecutionEngine",
    "RecoveryContext",
    "RecoveryOutcome",
    "RecoveryRecord",
    "RetrySampler",
    "REASON_DEVICE_DOWN",
    "REASON_EXHAUSTED",
    "PERSISTENT",
    "ActiveFaults",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "DEFAULT_CHAIN",
    "RecoveryPolicy",
    "RetryBackoffPolicy",
    "RebindSparePolicy",
    "ResynthesisPolicy",
    "build_policies",
    "CampaignStats",
    "TraceRecord",
    "aggregate_stats",
    "format_campaign",
    "read_trace",
    "trace_lines",
    "write_trace",
]
