"""Physical fault models for the cyberphysical execution engine.

FPVA-style testing work (Liu et al., arXiv:1705.04996) catalogs the fault
classes continuous-flow chips actually exhibit: valves stick, channels
block, pumps weaken.  At the abstraction level of a hybrid schedule those
surface as three injectable fault kinds:

* ``EXHAUST_RETRIES`` — an indeterminate operation burns through its whole
  attempt budget without success (e.g. a cell trap that never captures);
* ``DEVICE_DOWN`` — a device becomes unusable from a given layer onward
  (stuck valve, blocked inlet): every operation bound to it fails on
  dispatch;
* ``DEGRADE`` — a device slows down by a factor from a given layer onward
  (weakened pump): operations still succeed but take longer.

A :class:`FaultPlan` is the immutable experiment description; the engine
activates it into per-run mutable state (:class:`ActiveFaults`) so one plan
can drive many Monte-Carlo runs.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from ..errors import SpecificationError


class FaultKind(enum.Enum):
    EXHAUST_RETRIES = "exhaust"
    DEVICE_DOWN = "down"
    DEGRADE = "slow"


#: ``triggers`` value meaning "the fault never clears".
PERSISTENT = -1


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault.

    ``target`` is an operation uid for ``EXHAUST_RETRIES`` and a device uid
    for the device-level kinds.  ``at_layer`` arms device faults from that
    layer index onward (operation faults ignore it).  ``factor`` is the
    slowdown multiplier for ``DEGRADE``.  ``triggers`` caps how many times
    the fault fires — the default ``1`` models a transient fault that a
    recovery action clears; :data:`PERSISTENT` never clears (device faults
    default to persistent via :meth:`parse`).
    """

    kind: FaultKind
    target: str
    at_layer: int = 0
    factor: float = 2.0
    triggers: int = 1

    def __post_init__(self) -> None:
        if not self.target:
            raise SpecificationError("fault target must be non-empty")
        if self.at_layer < 0:
            raise SpecificationError("fault at_layer must be >= 0")
        if self.kind is FaultKind.DEGRADE and self.factor <= 1.0:
            raise SpecificationError(
                f"degrade factor must be > 1, got {self.factor}"
            )
        if self.triggers == 0 or self.triggers < PERSISTENT:
            raise SpecificationError(
                f"triggers must be positive or PERSISTENT, got {self.triggers}"
            )

    def to_json(self) -> dict:
        return {
            "kind": self.kind.value,
            "target": self.target,
            "at_layer": self.at_layer,
            "factor": self.factor,
            "triggers": self.triggers,
        }

    @staticmethod
    def from_json(data: dict) -> "FaultSpec":
        return FaultSpec(
            kind=FaultKind(data["kind"]),
            target=data["target"],
            at_layer=data.get("at_layer", 0),
            factor=data.get("factor", 2.0),
            triggers=data.get("triggers", 1),
        )

    @staticmethod
    def parse(text: str) -> "FaultSpec":
        """Parse the CLI shorthand ``kind:target[@layer][*factor]``.

        Examples: ``exhaust:capture0``, ``down:d1@2``, ``slow:d0*2.5``,
        ``slow:d0@1*3``.  Device faults (``down``/``slow``) default to
        persistent; ``exhaust`` defaults to a single transient trigger.
        """
        head, sep, rest = text.partition(":")
        if not sep or not rest:
            raise SpecificationError(
                f"fault spec {text!r} must look like kind:target[@layer][*factor]"
            )
        try:
            kind = FaultKind(head.strip())
        except ValueError:
            choices = ", ".join(k.value for k in FaultKind)
            raise SpecificationError(
                f"unknown fault kind {head!r} (choices: {choices})"
            ) from None
        factor = 2.0
        if "*" in rest:
            rest, _, factor_text = rest.partition("*")
            try:
                factor = float(factor_text)
            except ValueError:
                raise SpecificationError(
                    f"bad slowdown factor in fault spec {text!r}"
                ) from None
        at_layer = 0
        if "@" in rest:
            rest, _, layer_text = rest.partition("@")
            try:
                at_layer = int(layer_text)
            except ValueError:
                raise SpecificationError(
                    f"bad layer index in fault spec {text!r}"
                ) from None
        triggers = 1 if kind is FaultKind.EXHAUST_RETRIES else PERSISTENT
        return FaultSpec(
            kind=kind,
            target=rest.strip(),
            at_layer=at_layer,
            factor=factor,
            triggers=triggers,
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of faults to inject into a run (or campaign)."""

    faults: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.faults, tuple):
            object.__setattr__(self, "faults", tuple(self.faults))

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def activate(self) -> "ActiveFaults":
        return ActiveFaults(plan=self)

    def to_json(self) -> list[dict]:
        return [f.to_json() for f in self.faults]

    @staticmethod
    def parse(text: str) -> "FaultPlan":
        """Parse a comma-separated list of CLI fault shorthands."""
        specs = [
            FaultSpec.parse(part)
            for part in text.split(",")
            if part.strip()
        ]
        return FaultPlan(faults=tuple(specs))


@dataclass
class ActiveFaults:
    """Per-run mutable view of a :class:`FaultPlan`.

    Tracks remaining trigger counts so transient faults clear once a
    recovery action has absorbed them, while persistent faults keep firing.
    """

    plan: FaultPlan
    _remaining: dict[int, int] = field(default_factory=dict)
    fired: int = 0

    def __post_init__(self) -> None:
        self._remaining = {
            i: spec.triggers for i, spec in enumerate(self.plan.faults)
        }

    def _consume(self, index: int) -> bool:
        left = self._remaining[index]
        if left == 0:
            return False
        if left != PERSISTENT:
            self._remaining[index] = left - 1
        self.fired += 1
        return True

    def exhausts(self, op_uid: str) -> bool:
        """Fire (and consume) a pending exhaust-retries fault on ``op_uid``."""
        for i, spec in enumerate(self.plan.faults):
            if spec.kind is FaultKind.EXHAUST_RETRIES and spec.target == op_uid:
                if self._consume(i):
                    return True
        return False

    def device_down(self, device_uid: str, layer_index: int) -> bool:
        """Fire a device-down fault for ``device_uid`` at ``layer_index``."""
        for i, spec in enumerate(self.plan.faults):
            if (
                spec.kind is FaultKind.DEVICE_DOWN
                and spec.target == device_uid
                and layer_index >= spec.at_layer
            ):
                if self._consume(i):
                    return True
        return False

    def is_down(self, device_uid: str, layer_index: int) -> bool:
        """Whether ``device_uid`` is armed as down (without consuming)."""
        for i, spec in enumerate(self.plan.faults):
            if (
                spec.kind is FaultKind.DEVICE_DOWN
                and spec.target == device_uid
                and layer_index >= spec.at_layer
                and self._remaining[i] != 0
            ):
                return True
        return False

    def slowdown(self, device_uid: str, layer_index: int) -> float:
        """Combined slowdown factor on ``device_uid`` at ``layer_index``."""
        factor = 1.0
        for i, spec in enumerate(self.plan.faults):
            if (
                spec.kind is FaultKind.DEGRADE
                and spec.target == device_uid
                and layer_index >= spec.at_layer
                and self._remaining[i] != 0
            ):
                factor *= spec.factor
        return factor

    def scaled_duration(
        self, duration: int, device_uid: str, layer_index: int
    ) -> int:
        """``duration`` stretched by any degrade fault on the device."""
        factor = self.slowdown(device_uid, layer_index)
        if factor == 1.0:
            return duration
        return math.ceil(duration * factor)
