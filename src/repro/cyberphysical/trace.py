"""Structured traces and campaign aggregates.

Every decision the engine takes — layer dispatch, fault, recovery-policy
attempt, re-synthesis splice — becomes one :class:`TraceRecord`, exportable
as JSONL for downstream analysis.  :class:`CampaignStats` is the
deterministic aggregate over a Monte-Carlo campaign: it is computed from
the seed-sorted run list only, so the merged statistics are byte-identical
regardless of how many worker processes produced the runs.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass, field
from pathlib import Path


#: Canonical trace record kinds, in the order the engine emits them.
TRACE_KINDS = (
    "run_start",
    "layer_dispatch",
    "op_fault",
    "policy_attempt",
    "policy_result",
    "resynthesis_splice",
    "layer_complete",
    "run_end",
)


@dataclass(frozen=True)
class TraceRecord:
    """One engine decision, timestamped on the simulated clock."""

    seed: int
    time: int
    kind: str
    data: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "time": self.time,
            "kind": self.kind,
            **self.data,
        }


def trace_lines(records) -> list[str]:
    """Render records (or ready-made dicts) as JSONL lines, stable key order."""
    out = []
    for record in records:
        data = record.to_json() if hasattr(record, "to_json") else record
        out.append(json.dumps(data, sort_keys=True, default=str))
    return out


def write_trace(path, records) -> int:
    """Write records as JSONL; returns the number of lines written."""
    lines = trace_lines(records)
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))
    return len(lines)


def read_trace(path) -> list[dict]:
    """Load a JSONL trace back as dicts (for tests and tooling)."""
    out = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            out.append(json.loads(line))
    return out


@dataclass(frozen=True)
class CampaignStats:
    """Deterministic aggregate of one Monte-Carlo campaign.

    All distribution fields cover *completed* runs only; aborted runs
    truncate at the failing layer and would drag the makespan statistics
    down (the same bias the robustness harness used to have).  Timing
    (wall clock) is deliberately absent so the stats are reproducible
    byte-for-byte across worker counts and machines.
    """

    runs: int
    completed: int
    failed: int
    #: fraction of runs that did not complete the assay.
    failure_rate: float
    #: total recovery actions that succeeded, by policy name.
    recoveries: dict[str, int]
    #: faults that actually fired across all runs.
    faults_fired: int
    #: contingency re-synthesis splices across all runs.
    resyntheses: int
    mean_makespan: float
    median_makespan: float
    p95_makespan: float
    best_makespan: int
    worst_makespan: int

    def to_json(self) -> dict:
        return {
            "runs": self.runs,
            "completed": self.completed,
            "failed": self.failed,
            "failure_rate": self.failure_rate,
            "recoveries": dict(sorted(self.recoveries.items())),
            "faults_fired": self.faults_fired,
            "resyntheses": self.resyntheses,
            "mean_makespan": self.mean_makespan,
            "median_makespan": self.median_makespan,
            "p95_makespan": self.p95_makespan,
            "best_makespan": self.best_makespan,
            "worst_makespan": self.worst_makespan,
        }

    def to_json_text(self) -> str:
        """Canonical JSON rendering (the byte-identity comparison target)."""
        return json.dumps(self.to_json(), sort_keys=True)


def aggregate_stats(run_records) -> CampaignStats:
    """Fold seed-sorted run records into a :class:`CampaignStats`.

    ``run_records`` is any iterable of objects with ``seed``, ``makespan``,
    ``completed``, ``recoveries`` (mapping policy name -> count),
    ``faults_fired`` and ``resyntheses`` attributes; ordering does not
    matter because records are re-sorted by seed here.
    """
    records = sorted(run_records, key=lambda r: r.seed)
    runs = len(records)
    completed = [r for r in records if r.completed]
    failed = runs - len(completed)
    recoveries: dict[str, int] = {}
    for record in records:
        for policy, count in record.recoveries.items():
            recoveries[policy] = recoveries.get(policy, 0) + count
    makespans = sorted(r.makespan for r in completed)
    if makespans:
        mean = statistics.mean(makespans)
        median = statistics.median(makespans)
        p95 = float(
            makespans[min(len(makespans) - 1, int(0.95 * len(makespans)))]
        )
        best, worst = makespans[0], makespans[-1]
    else:
        mean = median = p95 = 0.0
        best = worst = 0
    return CampaignStats(
        runs=runs,
        completed=len(completed),
        failed=failed,
        failure_rate=failed / runs if runs else 0.0,
        recoveries=recoveries,
        faults_fired=sum(r.faults_fired for r in records),
        resyntheses=sum(r.resyntheses for r in records),
        mean_makespan=float(mean),
        median_makespan=float(median),
        p95_makespan=float(p95),
        best_makespan=best,
        worst_makespan=worst,
    )


def format_campaign(stats: CampaignStats) -> str:
    """Human-readable campaign summary for the CLI."""
    lines = [
        f"runs           : {stats.runs}",
        f"completed      : {stats.completed}",
        f"failed         : {stats.failed}"
        f"  (failure rate {stats.failure_rate:.1%})",
        f"faults fired   : {stats.faults_fired}",
        f"resyntheses    : {stats.resyntheses}",
    ]
    if stats.recoveries:
        per_policy = ", ".join(
            f"{name}={count}" for name, count in sorted(stats.recoveries.items())
        )
        lines.append(f"recoveries     : {per_policy}")
    if stats.completed:
        lines.append(
            f"makespan       : mean {stats.mean_makespan:.1f}, "
            f"median {stats.median_makespan:.1f}, "
            f"p95 {stats.p95_makespan:.1f}, "
            f"best {stats.best_makespan}, worst {stats.worst_makespan}"
        )
    return "\n".join(lines)
