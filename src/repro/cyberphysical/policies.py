"""Recovery policies, tried in order by the execution engine.

Three escalating responses to an operation failure, mirroring what a chip
operator can actually do (cf. cyberphysical module-less synthesis,
Chakraborty et al., arXiv:1804.02631):

1. :class:`RetryBackoffPolicy` — give the operation more attempt rounds in
   place, with exponentially growing settle pauses between rounds;
2. :class:`RebindSparePolicy` — move the operation to a compatible spare
   device (component-cover check against the live device inventory);
3. :class:`ResynthesisPolicy` — *contingency re-synthesis*: extract the
   residual assay (the failed operation plus everything not yet executed),
   re-run the full HLS flow on it — reusing the cross-pass layer-solve
   cache and warm starts — and splice the fresh layers into the running
   schedule.

A policy returns ``None`` when it is not applicable to the failure at
hand, or a :class:`~repro.cyberphysical.engine.RecoveryOutcome` describing
what it did (time is charged even for unsuccessful attempts).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ReproError
from ..hls.cache import LayerSolveCache
from ..hls.context import SynthesisContext
from ..hls.pipeline import SynthesisPipeline
from ..hls.schedule import LayerSchedule
from .engine import (
    REASON_EXHAUSTED,
    RecoveryContext,
    RecoveryOutcome,
)


class RecoveryPolicy:
    """Interface: ``attempt`` returns an outcome or ``None`` (inapplicable)."""

    name = "policy"

    def attempt(self, context: RecoveryContext) -> RecoveryOutcome | None:
        raise NotImplementedError


@dataclass
class RetryBackoffPolicy(RecoveryPolicy):
    """Re-run the failed indeterminate operation with exponential backoff.

    Round ``r`` waits ``backoff * 2**r`` time units (letting the physical
    condition settle) and then re-samples a full attempt batch.  Only
    applicable to exhausted-retries failures — a down device cannot be
    fixed by trying harder.
    """

    rounds: int = 3
    backoff: int = 2

    name = "retry"

    def attempt(self, context: RecoveryContext) -> RecoveryOutcome | None:
        failure = context.failure
        if failure.reason != REASON_EXHAUSTED:
            return None
        placement = failure.placement
        engine = context.engine
        duration = context.faults.scaled_duration(
            placement.duration, placement.device_uid, context.position
        )
        extra = 0
        for round_index in range(self.rounds):
            extra += self.backoff * (2**round_index)
            tries, succeeded = engine.sampler.sample(placement, context.rng)
            if context.faults.exhausts(placement.uid):
                tries = max(tries, engine.sampler.max_attempts)
                succeeded = False
            extra += tries * duration
            if succeeded:
                return RecoveryOutcome(
                    recovered=True,
                    extra_time=extra,
                    device=placement.device_uid,
                    note=f"succeeded in backoff round {round_index + 1}",
                )
        return RecoveryOutcome(
            recovered=False,
            extra_time=extra,
            note=f"still failing after {self.rounds} backoff rounds",
        )


@dataclass
class RebindSparePolicy(RecoveryPolicy):
    """Re-execute the failed operation on a compatible spare device.

    Spares come from the engine's live inventory (every device the
    synthesized chip integrates, plus any added by earlier contingency
    splices).  Legality is the paper's component-cover check under the
    run's binding mode.  At recovery time the layer's other operations
    have completed, so any covering device is idle; moving the fluid
    costs one default transportation hop.
    """

    name = "rebind"

    def attempt(self, context: RecoveryContext) -> RecoveryOutcome | None:
        engine = context.engine
        placement = context.failure.placement
        operation = context.operation
        mode = engine.spec.binding_mode
        spare = None
        for uid in sorted(engine.devices):
            if uid == placement.device_uid:
                continue
            if context.faults.is_down(uid, context.position):
                continue
            if engine.devices[uid].can_execute(operation, mode):
                spare = engine.devices[uid]
                break
        if spare is None:
            return None

        transport = engine.spec.transport_default
        duration = context.faults.scaled_duration(
            placement.duration, spare.uid, context.position
        )
        if placement.indeterminate:
            tries, succeeded = engine.sampler.sample(placement, context.rng)
            if context.faults.exhausts(placement.uid):
                tries = max(tries, engine.sampler.max_attempts)
                succeeded = False
            extra = transport + tries * duration
            if not succeeded:
                return RecoveryOutcome(
                    recovered=False,
                    extra_time=extra,
                    device=spare.uid,
                    note=f"rebound to {spare.uid} but still failing",
                )
        else:
            extra = transport + duration
        return RecoveryOutcome(
            recovered=True,
            extra_time=extra,
            device=spare.uid,
            note=f"rebound {placement.uid} onto spare {spare.uid}",
        )


@dataclass
class ResynthesisPolicy(RecoveryPolicy):
    """Contingency re-synthesis of the residual assay.

    The residual is the failed operation plus every operation in a layer
    not yet dispatched.  It is re-synthesized with the same spec (optionally
    a tighter per-layer time limit) through a *persistent*
    :class:`~repro.hls.cache.LayerSolveCache`, so repeated contingencies —
    across Monte-Carlo runs in the same process — replay earlier layer
    solves instead of paying the ILP again.  The resulting layers are
    spliced over the remaining schedule; their devices enter the inventory
    under fresh uids.
    """

    #: per-layer ILP budget for contingency solves (None = inherit spec).
    time_limit: float | None = 5.0
    #: refinement passes for contingency synthesis (re-planning must be
    #: fast; one pass is the paper's initial synthesis).
    max_iterations: int = 0
    #: cap on splices per run, so a persistent fault cannot loop forever.
    max_splices: int = 3

    name = "resynth"

    def __post_init__(self) -> None:
        self._cache = LayerSolveCache()

    @property
    def cache(self) -> LayerSolveCache:
        return self._cache

    def attempt(self, context: RecoveryContext) -> RecoveryOutcome | None:
        engine = context.engine
        if engine.resyntheses >= self.max_splices:
            return None
        residual_uids = {context.op_uid}
        for layer in context.remaining:
            residual_uids.update(layer.placements)
        residual = engine.assay.subset(
            sorted(residual_uids),
            name=f"{engine.assay.name}-contingency",
        )
        spec = replace(
            engine.spec,
            time_limit=self.time_limit or engine.spec.time_limit,
            max_iterations=self.max_iterations,
        )
        # Contingency re-planning runs through the same pass pipeline as
        # offline synthesis, with the policy's persistent cross-run cache
        # injected via the context.  jobs is pinned to 1: recovery often
        # happens inside a Monte-Carlo campaign worker, where nesting
        # another process pool would oversubscribe the machine.
        synthesis = SynthesisContext(
            assay=residual, spec=spec, cache=self._cache, jobs=1
        )
        try:
            contingency = SynthesisPipeline().run(synthesis)
        except ReproError as exc:
            return RecoveryOutcome(
                recovered=False,
                note=f"contingency synthesis failed: {exc}",
            )

        mapping = {
            uid: engine.allocate_device_uid()
            for uid in sorted(contingency.devices)
        }
        new_devices = {
            mapping[uid]: replace(device, uid=mapping[uid])
            for uid, device in contingency.devices.items()
        }
        base = context.layer.index + 1
        spliced: list[LayerSchedule] = []
        for offset, layer in enumerate(contingency.schedule.layers):
            fresh = LayerSchedule(index=base + offset)
            for placement in layer.placements.values():
                fresh.place(
                    replace(
                        placement,
                        device_uid=mapping[placement.device_uid],
                    )
                )
            spliced.append(fresh)

        stats = [s for s in contingency.solve_stats]
        hits = sum(1 for s in stats if s.cache_hit)
        return RecoveryOutcome(
            recovered=True,
            extra_time=engine.spec.transport_default,
            note=(
                f"re-synthesized {len(residual)} residual ops into "
                f"{len(spliced)} layer(s), makespan "
                f"{contingency.schedule.fixed_makespan} "
                f"({hits}/{len(stats)} layer solves from cache)"
            ),
            splice=spliced,
            new_devices=new_devices,
        )


#: Default escalation order.
DEFAULT_CHAIN = ("retry", "rebind", "resynth")

_FACTORIES = {
    "retry": RetryBackoffPolicy,
    "rebind": RebindSparePolicy,
    "resynth": ResynthesisPolicy,
}


def build_policies(names) -> list[RecoveryPolicy]:
    """Instantiate a policy chain from CLI-style names.

    ``"all"`` expands to the default escalation chain; ``"abort"`` (or an
    empty selection) yields no policies — the engine then behaves like the
    seed executor and aborts on the first unrecovered failure.
    """
    chain: list[RecoveryPolicy] = []
    for name in names:
        if name == "abort":
            continue
        if name == "all":
            chain.extend(_FACTORIES[n]() for n in DEFAULT_CHAIN)
            continue
        try:
            chain.append(_FACTORIES[name]())
        except KeyError:
            choices = ", ".join(("abort", "all", *_FACTORIES))
            raise ReproError(
                f"unknown recovery policy {name!r} (choices: {choices})"
            ) from None
    return chain
