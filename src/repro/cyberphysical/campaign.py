"""Parallel Monte-Carlo fault campaigns.

A campaign runs the closed-loop engine many times with consecutive seeds
under one fault plan and policy chain, shards the seeds across a
``concurrent.futures.ProcessPoolExecutor``, and merges per-worker results
*deterministically*: run records carry their seed, the merge re-sorts by
seed, and :func:`~repro.cyberphysical.trace.aggregate_stats` consumes only
the sorted list — so the merged :class:`~repro.cyberphysical.trace.CampaignStats`
is byte-identical whatever ``jobs`` was.

Policies are reconstructed inside each worker from their names (policy
objects carry a live layer-solve cache and are deliberately not shipped
across processes); within a worker the contingency-re-synthesis cache is
shared across that shard's runs, so repeated contingencies replay earlier
layer solves instead of re-paying the ILP.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..errors import SpecificationError
from ..hls.synthesizer import SynthesisResult
from ..runtime.executor import RetryModel
from .engine import ExecutionEngine, RetrySampler
from .faults import FaultPlan
from .policies import build_policies
from .trace import CampaignStats, TraceRecord, aggregate_stats


@dataclass(frozen=True)
class CampaignConfig:
    """Everything a campaign run needs, in picklable form."""

    runs: int = 32
    seed: int = 0
    jobs: int = 1
    #: recovery policy names (see :func:`repro.cyberphysical.policies.build_policies`).
    policies: tuple[str, ...] = ("all",)
    faults: FaultPlan = field(default_factory=FaultPlan)
    retry_model: RetryModel = field(default_factory=RetryModel)
    #: keep per-run traces in the records (disable for very large sweeps).
    keep_traces: bool = True

    def __post_init__(self) -> None:
        if self.runs < 1:
            raise SpecificationError("campaign needs at least one run")
        if self.jobs < 1:
            raise SpecificationError("jobs must be >= 1")
        if not isinstance(self.policies, tuple):
            object.__setattr__(self, "policies", tuple(self.policies))


@dataclass(frozen=True)
class RunRecord:
    """Picklable outcome of one engine run."""

    seed: int
    makespan: int
    completed: bool
    recoveries: dict
    faults_fired: int
    resyntheses: int
    failed_ops: tuple
    #: JSON-ready trace dicts (empty when traces are disabled).
    trace: tuple


@dataclass
class CampaignOutcome:
    """A campaign's merged result."""

    stats: CampaignStats
    records: list[RunRecord]
    wall_time: float
    jobs: int

    def trace_records(self) -> list[dict]:
        """All runs' trace dicts, seed order (ready for JSONL export)."""
        out: list[dict] = []
        for record in sorted(self.records, key=lambda r: r.seed):
            out.extend(record.trace)
        return out


def run_one(
    result: SynthesisResult,
    config: CampaignConfig,
    seed: int,
    policies=None,
) -> RunRecord:
    """Execute one seeded engine run and condense it into a record.

    ``policies`` lets a caller (or worker shard) reuse one policy chain —
    and therefore one contingency solve cache — across runs.
    """
    if policies is None:
        policies = build_policies(config.policies)
    engine = ExecutionEngine(
        result,
        policies=policies,
        fault_plan=config.faults,
        sampler=RetrySampler(config.retry_model),
        seed=seed,
    )
    report = engine.run()
    trace: tuple = ()
    if config.keep_traces:
        trace = tuple(r.to_json() for r in report.trace)
    return RunRecord(
        seed=seed,
        makespan=report.makespan,
        completed=report.completed,
        recoveries=report.recoveries,
        faults_fired=report.faults_fired,
        resyntheses=report.resyntheses,
        failed_ops=tuple(report.failed_ops),
        trace=trace,
    )


def _run_shard(args) -> list[RunRecord]:
    """Worker entry point: run every seed of one shard sequentially."""
    result, config, seeds = args
    policies = build_policies(config.policies)
    return [run_one(result, config, seed, policies) for seed in seeds]


def _shard_seeds(seeds: list[int], shards: int) -> list[list[int]]:
    """Contiguous, balanced shards (at most ``shards`` non-empty lists)."""
    shards = min(shards, len(seeds))
    base, remainder = divmod(len(seeds), shards)
    out: list[list[int]] = []
    cursor = 0
    for k in range(shards):
        size = base + (1 if k < remainder else 0)
        out.append(seeds[cursor : cursor + size])
        cursor += size
    return [s for s in out if s]


def run_campaign(
    result: SynthesisResult, config: CampaignConfig | None = None
) -> CampaignOutcome:
    """Run a full Monte-Carlo campaign; deterministic for a given config.

    ``config.jobs == 1`` runs inline (no process pool); higher values shard
    the seed list across worker processes.  Either way the merged records
    are sorted by seed before aggregation, so the resulting
    :class:`CampaignStats` does not depend on the worker count.
    """
    config = config or CampaignConfig()
    started = time.monotonic()
    seeds = [config.seed + k for k in range(config.runs)]

    if config.jobs == 1:
        records = _run_shard((result, config, seeds))
    else:
        shards = _shard_seeds(seeds, config.jobs)
        payloads = [(result, config, shard) for shard in shards]
        with ProcessPoolExecutor(max_workers=len(shards)) as pool:
            shard_results = list(pool.map(_run_shard, payloads))
        records = [record for shard in shard_results for record in shard]

    records.sort(key=lambda r: r.seed)
    stats = aggregate_stats(records)
    return CampaignOutcome(
        stats=stats,
        records=records,
        wall_time=time.monotonic() - started,
        jobs=config.jobs,
    )


def campaign_trace(outcome: CampaignOutcome) -> list[TraceRecord]:
    """Rehydrate an outcome's trace dicts as :class:`TraceRecord` objects."""
    out = []
    for data in outcome.trace_records():
        payload = dict(data)
        seed = payload.pop("seed")
        when = payload.pop("time")
        kind = payload.pop("kind")
        out.append(TraceRecord(seed=seed, time=when, kind=kind, data=payload))
    return out
