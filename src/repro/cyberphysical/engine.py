"""Closed-loop discrete-event execution engine.

The seed executor (:mod:`repro.runtime.executor`) replays one sampled trace
and hard-aborts every descendant layer the moment an operation fails.  This
engine turns that open-loop replay into the control loop the paper's
cyberphysical framing actually calls for:

* layers are dispatched one at a time; the layer-to-layer transition is a
  run-time decision taken after *observing* every operation outcome;
* observation comes from a pluggable :class:`DurationSampler` (the "sensor"
  abstraction — the default wraps the geometric
  :class:`~repro.runtime.executor.RetryModel`);
* a :class:`~repro.cyberphysical.faults.FaultPlan` injects physical faults
  (exhausted retries, device-down, degraded-device slowdown);
* on failure the engine consults its recovery policies in order
  (:mod:`repro.cyberphysical.policies`); a policy may absorb the fault in
  place, rebind the operation to a spare device, or splice freshly
  re-synthesized contingency layers into the running schedule;
* every decision is recorded as a :class:`~repro.cyberphysical.trace.TraceRecord`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Protocol

from ..hls.schedule import LayerSchedule, OpPlacement
from ..hls.synthesizer import SynthesisResult
from ..runtime.events import Event, EventKind, EventLog
from ..runtime.executor import RetryModel, _assert_exclusive
from .faults import ActiveFaults, FaultPlan
from .trace import TraceRecord


class DurationSampler(Protocol):
    """Sensor feedback: realized attempt counts for indeterminate ops."""

    @property
    def max_attempts(self) -> int: ...

    def sample(
        self, placement: OpPlacement, rng: random.Random
    ) -> tuple[int, bool]:
        """Return (attempts, succeeded) for one execution of ``placement``."""
        ...


class RetrySampler:
    """Default sampler: the geometric retry model of the seed executor."""

    def __init__(self, model: RetryModel | None = None) -> None:
        self.model = model or RetryModel()

    @property
    def max_attempts(self) -> int:
        return self.model.max_attempts

    def sample(
        self, placement: OpPlacement, rng: random.Random
    ) -> tuple[int, bool]:
        if not placement.indeterminate:
            return 1, True
        return self.model.sample_attempts(rng)


#: Failure reasons the policies dispatch on.
REASON_EXHAUSTED = "exhausted_retries"
REASON_DEVICE_DOWN = "device_down"


@dataclass
class OpFailure:
    """One operation failure awaiting recovery."""

    placement: OpPlacement
    reason: str
    #: simulated time at which the failure was observed.
    observed_at: int


@dataclass(frozen=True)
class RecoveryRecord:
    """One successful (or finally failed) recovery attempt chain."""

    op: str
    layer: int
    reason: str
    policy: str
    extra_time: int
    device: str = ""
    note: str = ""


@dataclass
class RecoveryContext:
    """Everything a recovery policy may consult."""

    engine: "ExecutionEngine"
    failure: OpFailure
    layer: LayerSchedule
    #: dispatch position of the failing layer in execution order.
    position: int
    rng: random.Random
    faults: ActiveFaults
    #: layers not yet dispatched (candidates for contingency re-planning).
    remaining: list[LayerSchedule]

    @property
    def op_uid(self) -> str:
        return self.failure.placement.uid

    @property
    def operation(self):
        return self.engine.assay[self.op_uid]


@dataclass
class RecoveryOutcome:
    """What one policy attempt did.

    ``extra_time`` is charged to the running clock whether or not the
    attempt recovered (failed attempts still burn chip time).  ``splice``
    replaces every not-yet-dispatched layer with freshly synthesized
    contingency layers; ``new_devices`` are merged into the engine's
    inventory before the splice executes.
    """

    recovered: bool
    extra_time: int = 0
    device: str = ""
    note: str = ""
    splice: list[LayerSchedule] | None = None
    new_devices: dict = field(default_factory=dict)


@dataclass
class EngineReport:
    """Outcome of one closed-loop run."""

    seed: int
    makespan: int
    completed: bool
    layer_spans: list[tuple[int, int]]
    attempts: dict[str, int]
    failed_ops: list[str]
    aborted_layers: list[int]
    recovery_records: list[RecoveryRecord]
    faults_fired: int
    resyntheses: int
    trace: list[TraceRecord]
    log: EventLog

    @property
    def recoveries(self) -> dict[str, int]:
        """Successful recovery counts by policy name."""
        out: dict[str, int] = {}
        for record in self.recovery_records:
            out[record.policy] = out.get(record.policy, 0) + 1
        return out


class ExecutionEngine:
    """Dispatch a hybrid schedule layer by layer with online recovery."""

    def __init__(
        self,
        result: SynthesisResult,
        policies=(),
        fault_plan: FaultPlan | None = None,
        sampler: DurationSampler | None = None,
        retry_model: RetryModel | None = None,
        seed: int = 0,
    ) -> None:
        self.result = result
        self.assay = result.assay
        self.spec = result.spec
        self.policies = list(policies)
        self.fault_plan = fault_plan or FaultPlan()
        self.sampler = sampler or RetrySampler(retry_model)
        self.seed = seed
        #: live device inventory; contingency re-synthesis adds to it.
        self.devices = dict(result.devices)
        #: count of contingency splices this run (policies consult the cap).
        self.resyntheses = 0
        self._uid_counter = 0

    def allocate_device_uid(self) -> str:
        """Fresh device uid that cannot collide with the synthesized set."""
        uid = f"c{self._uid_counter}"
        self._uid_counter += 1
        return uid

    # -- main loop --------------------------------------------------------

    def run(self) -> EngineReport:
        rng = random.Random(self.seed)
        faults = self.fault_plan.activate()
        log = EventLog()
        trace: list[TraceRecord] = []
        #: mutable work list — contingency splices rewrite the tail.
        pending: list[LayerSchedule] = list(self.result.schedule.layers)

        clock = 0
        position = 0
        layer_spans: list[tuple[int, int]] = []
        attempts: dict[str, int] = {}
        failed_ops: list[str] = []
        aborted_layers: list[int] = []
        recovery_records: list[RecoveryRecord] = []
        self.resyntheses = 0

        trace.append(
            TraceRecord(
                self.seed,
                0,
                "run_start",
                {
                    "layers": len(pending),
                    "faults": [f.to_json() for f in self.fault_plan],
                    "policies": [p.name for p in self.policies],
                },
            )
        )

        while pending:
            layer = pending.pop(0)
            layer_start = clock
            trace.append(
                TraceRecord(
                    self.seed,
                    layer_start,
                    "layer_dispatch",
                    {
                        "layer": layer.index,
                        "position": position,
                        "ops": sorted(layer.placements),
                    },
                )
            )
            log.record(
                Event(layer_start, EventKind.LAYER_START, layer=layer.index)
            )
            _assert_exclusive(layer)

            layer_end, failures = self._play_layer(
                layer, layer_start, position, rng, faults, attempts, log
            )

            for failure in failures:
                failure.observed_at = layer_end
                trace.append(
                    TraceRecord(
                        self.seed,
                        layer_end,
                        "op_fault",
                        {
                            "op": failure.placement.uid,
                            "layer": layer.index,
                            "device": failure.placement.device_uid,
                            "reason": failure.reason,
                        },
                    )
                )
                context = RecoveryContext(
                    engine=self,
                    failure=failure,
                    layer=layer,
                    position=position,
                    rng=rng,
                    faults=faults,
                    remaining=pending,
                )
                recovered, extra, record = self._recover(
                    context, pending, trace, layer_end
                )
                layer_end += extra
                if record is not None:
                    recovery_records.append(record)
                if not recovered:
                    failed_ops.append(failure.placement.uid)

            log.record(Event(layer_end, EventKind.LAYER_END, layer=layer.index))
            layer_spans.append((layer_start, layer_end))
            trace.append(
                TraceRecord(
                    self.seed,
                    layer_end,
                    "layer_complete",
                    {"layer": layer.index, "span": [layer_start, layer_end]},
                )
            )
            clock = layer_end
            position += 1

            if failed_ops:
                aborted_layers = [lay.index for lay in pending]
                pending = []

        log.finalize()
        completed = not failed_ops
        trace.append(
            TraceRecord(
                self.seed,
                clock,
                "run_end",
                {
                    "makespan": clock,
                    "completed": completed,
                    "failed_ops": list(failed_ops),
                    "faults_fired": faults.fired,
                    "resyntheses": self.resyntheses,
                },
            )
        )
        return EngineReport(
            seed=self.seed,
            makespan=clock,
            completed=completed,
            layer_spans=layer_spans,
            attempts=attempts,
            failed_ops=failed_ops,
            aborted_layers=aborted_layers,
            recovery_records=recovery_records,
            faults_fired=faults.fired,
            resyntheses=self.resyntheses,
            trace=trace,
            log=log,
        )

    # -- internals --------------------------------------------------------

    def _play_layer(
        self,
        layer: LayerSchedule,
        layer_start: int,
        position: int,
        rng: random.Random,
        faults: ActiveFaults,
        attempts: dict[str, int],
        log: EventLog,
    ) -> tuple[int, list[OpFailure]]:
        """Execute one layer's fixed sub-schedule; collect failures."""
        layer_end = layer_start
        failures: list[OpFailure] = []
        ordered = sorted(
            layer.placements.values(), key=lambda p: (p.start, p.uid)
        )
        for placement in ordered:
            start = layer_start + placement.start
            device = placement.device_uid
            log.record(
                Event(
                    start,
                    EventKind.OP_START,
                    uid=placement.uid,
                    layer=layer.index,
                    device=device,
                )
            )
            if faults.device_down(device, position):
                # The dispatch itself fails; no chip time is consumed beyond
                # the scheduled start.
                failures.append(
                    OpFailure(placement, REASON_DEVICE_DOWN, start)
                )
                log.record(
                    Event(
                        start,
                        EventKind.OP_END,
                        uid=placement.uid,
                        layer=layer.index,
                        device=device,
                    )
                )
                layer_end = max(layer_end, start)
                continue

            duration = faults.scaled_duration(
                placement.duration, device, position
            )
            if placement.indeterminate:
                tries, succeeded = self.sampler.sample(placement, rng)
                if faults.exhausts(placement.uid):
                    tries = max(tries, self.sampler.max_attempts)
                    succeeded = False
                attempts[placement.uid] = (
                    attempts.get(placement.uid, 0) + tries
                )
                end = start + tries * duration
                for attempt in range(1, tries):
                    log.record(
                        Event(
                            start + attempt * duration,
                            EventKind.OP_RETRY,
                            uid=placement.uid,
                            layer=layer.index,
                            device=device,
                        )
                    )
                if not succeeded:
                    failures.append(
                        OpFailure(placement, REASON_EXHAUSTED, end)
                    )
            else:
                end = start + duration
            log.record(
                Event(
                    end,
                    EventKind.OP_END,
                    uid=placement.uid,
                    layer=layer.index,
                    device=device,
                )
            )
            layer_end = max(layer_end, end)
        return layer_end, failures

    def _recover(
        self,
        context: RecoveryContext,
        pending: list[LayerSchedule],
        trace: list[TraceRecord],
        now: int,
    ) -> tuple[bool, int, RecoveryRecord | None]:
        """Run the policy chain for one failure.

        Returns (recovered, total extra time, record of the successful
        policy or None).  Failed attempts still charge their time.
        """
        total_extra = 0
        for policy in self.policies:
            trace.append(
                TraceRecord(
                    self.seed,
                    now + total_extra,
                    "policy_attempt",
                    {
                        "op": context.op_uid,
                        "policy": policy.name,
                        "reason": context.failure.reason,
                    },
                )
            )
            outcome = policy.attempt(context)
            if outcome is None:
                trace.append(
                    TraceRecord(
                        self.seed,
                        now + total_extra,
                        "policy_result",
                        {
                            "op": context.op_uid,
                            "policy": policy.name,
                            "applicable": False,
                        },
                    )
                )
                continue
            total_extra += outcome.extra_time
            trace.append(
                TraceRecord(
                    self.seed,
                    now + total_extra,
                    "policy_result",
                    {
                        "op": context.op_uid,
                        "policy": policy.name,
                        "applicable": True,
                        "recovered": outcome.recovered,
                        "extra_time": outcome.extra_time,
                        "device": outcome.device,
                        "note": outcome.note,
                    },
                )
            )
            if not outcome.recovered:
                continue
            if outcome.new_devices:
                self.devices.update(outcome.new_devices)
            if outcome.splice is not None:
                dropped = [lay.index for lay in pending]
                pending.clear()
                pending.extend(outcome.splice)
                self.resyntheses += 1
                trace.append(
                    TraceRecord(
                        self.seed,
                        now + total_extra,
                        "resynthesis_splice",
                        {
                            "op": context.op_uid,
                            "dropped_layers": dropped,
                            "spliced_layers": [
                                lay.index for lay in outcome.splice
                            ],
                            "new_devices": sorted(outcome.new_devices),
                            "note": outcome.note,
                        },
                    )
                )
            record = RecoveryRecord(
                op=context.op_uid,
                layer=context.layer.index,
                reason=context.failure.reason,
                policy=policy.name,
                extra_time=total_extra,
                device=outcome.device,
                note=outcome.note,
            )
            return True, total_extra, record
        return False, total_extra, None
